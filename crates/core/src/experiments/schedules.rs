//! Fig. 8: fill-job GPU utilization under GPipe vs 1F1B main-job
//! schedules, 2K–16K GPUs. 1F1B's non-contiguous bubbles are not filled,
//! so it recovers less at low scale; the gap closes at high scale as the
//! fill-drain and fwd-bwd bubbles dominate.

use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::csv::CsvWriter;
use crate::experiments::sweep;
use crate::steady::steady_recovered_tflops;

/// One (GPU count, schedule) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRow {
    /// Total GPUs.
    pub gpus: usize,
    /// Main-job schedule.
    pub schedule: ScheduleKind,
    /// Total bubble ratio (identical across schedules).
    pub bubble_ratio: f64,
    /// Fillable bubble ratio (lower for 1F1B).
    pub fillable_ratio: f64,
    /// Recovered fill TFLOPS per GPU with the trace mix.
    pub recovered_tflops: f64,
}

/// Runs the sweep at the paper's 2K–16K GPU range; the (scale, schedule)
/// grid fans out across cores.
pub fn fig8_schedules(exec: &ExecutorConfig) -> Vec<ScheduleRow> {
    let mix = ModelMix::paper_mix();
    let mut grid = Vec::new();
    for &m in &[32usize, 16, 8, 4] {
        for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            grid.push((m, schedule));
        }
    }
    sweep::par_map(grid, |(m, schedule)| {
        let main = MainJobSpec::simulator_40b(m, schedule);
        let timeline = main.engine_timeline();
        ScheduleRow {
            gpus: main.parallelism.total_gpus(),
            schedule,
            bubble_ratio: timeline.bubble_ratio(),
            fillable_ratio: timeline.fillable_ratio(),
            recovered_tflops: steady_recovered_tflops(&main, exec, &mix),
        }
    })
}

/// Prints the comparison.
pub fn print_schedules(rows: &[ScheduleRow]) {
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>12}",
        "GPUs", "sched", "bubble", "fillable", "fill TFLOPS"
    );
    for r in rows {
        println!(
            "{:>6} {:>8} {:>7.1}% {:>9.1}% {:>12.2}",
            r.gpus,
            r.schedule.to_string(),
            100.0 * r.bubble_ratio,
            100.0 * r.fillable_ratio,
            r.recovered_tflops,
        );
    }
}

/// Writes CSV.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_schedules(rows: &[ScheduleRow], path: &str) -> std::io::Result<()> {
    let mut w = CsvWriter::create(
        path,
        &[
            "gpus",
            "schedule",
            "bubble_ratio",
            "fillable_ratio",
            "recovered_tflops",
        ],
    )?;
    for r in rows {
        w.row(&[
            &r.gpus,
            &r.schedule,
            &r.bubble_ratio,
            &r.fillable_ratio,
            &r.recovered_tflops,
        ])?;
    }
    w.finish().map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_shrinks_with_scale() {
        let rows = fig8_schedules(&ExecutorConfig::default());
        let gap = |gpus: usize| {
            let g = rows
                .iter()
                .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::GPipe)
                .unwrap()
                .recovered_tflops;
            let o = rows
                .iter()
                .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::OneFOneB)
                .unwrap()
                .recovered_tflops;
            (g - o) / g
        };
        let low_scale = gap(2048);
        let high_scale = gap(16384);
        // Fig. 8: ~17-20% more recovered with GPipe at small scale,
        // shrinking substantially at large scale (the paper reaches <5%;
        // our packing loses a little more on 1F1B's shorter windows —
        // see EXPERIMENTS.md).
        assert!(low_scale > 0.05, "low-scale gap {low_scale}");
        assert!(
            high_scale < low_scale * 0.6,
            "gap did not close: {low_scale} -> {high_scale}"
        );
        assert!(high_scale < 0.13, "high-scale gap {high_scale}");
    }

    #[test]
    fn total_bubble_ratio_is_schedule_independent() {
        let rows = fig8_schedules(&ExecutorConfig::default());
        for gpus in [2048usize, 4096, 8192, 16384] {
            let pair: Vec<&ScheduleRow> = rows.iter().filter(|r| r.gpus == gpus).collect();
            assert_eq!(pair.len(), 2);
            // Identical up to the small period difference the inter-stage
            // communication latency introduces between the two schedules.
            assert!(
                (pair[0].bubble_ratio - pair[1].bubble_ratio).abs() < 0.02,
                "bubble ratios diverge at {gpus}: {} vs {}",
                pair[0].bubble_ratio,
                pair[1].bubble_ratio
            );
            // Fillable is never more than total.
            for r in pair {
                assert!(r.fillable_ratio <= r.bubble_ratio + 1e-12);
            }
        }
    }
}
