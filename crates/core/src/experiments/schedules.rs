//! Fig. 8: fill-job GPU utilization under GPipe vs 1F1B main-job
//! schedules, 2K–16K GPUs. 1F1B's non-contiguous bubbles are not filled,
//! so it recovers less at low scale; the gap closes at high scale as the
//! fill-drain and fwd-bwd bubbles dominate.
//!
//! The depth sweep extends the Fig. 8 question to the full schedule
//! family — GPipe, 1F1B, interleaved 1F1B and ZB-H1 — across pipeline
//! depths: how much fillable bubble *remains* once the main job runs a
//! better schedule ([`schedule_depth_sweep`]).

use pipefill_executor::ExecutorConfig;
use pipefill_pipeline::{bubble_fraction_for, EngineConfig, MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::experiments::sweep;
use crate::steady::steady_recovered_tflops;

/// One (GPU count, schedule) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRow {
    /// Total GPUs.
    pub gpus: usize,
    /// Main-job schedule.
    pub schedule: ScheduleKind,
    /// Total bubble ratio (identical across schedules).
    pub bubble_ratio: f64,
    /// Fillable bubble ratio (lower for 1F1B).
    pub fillable_ratio: f64,
    /// Recovered fill TFLOPS per GPU with the trace mix.
    pub recovered_tflops: f64,
}

/// Runs the sweep at the paper's 2K–16K GPU range; the (scale, schedule)
/// grid fans out across cores.
pub fn fig8_schedules(exec: &ExecutorConfig) -> Vec<ScheduleRow> {
    let mix = ModelMix::paper_mix();
    let mut grid = Vec::new();
    for &m in &[32usize, 16, 8, 4] {
        for schedule in [ScheduleKind::GPipe, ScheduleKind::OneFOneB] {
            grid.push((m, schedule));
        }
    }
    sweep::par_map(grid, |(m, schedule)| {
        let main = MainJobSpec::simulator_40b(m, schedule);
        let timeline = main.engine_timeline();
        ScheduleRow {
            gpus: main.parallelism.total_gpus(),
            schedule,
            bubble_ratio: timeline.bubble_ratio(),
            fillable_ratio: timeline.fillable_ratio(),
            recovered_tflops: steady_recovered_tflops(&main, exec, &mix),
        }
    })
}

/// One point of the 4-schedule × depth sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthRow {
    /// Main-job schedule.
    pub schedule: ScheduleKind,
    /// Pipeline depth `p`.
    pub stages: usize,
    /// Microbatches per replica `m`.
    pub microbatches: usize,
    /// Steady-state iteration period in seconds.
    pub period_secs: f64,
    /// Engine-measured total bubble ratio.
    pub bubble_ratio: f64,
    /// Engine-measured fillable bubble ratio (what PipeFill gets).
    pub fillable_ratio: f64,
    /// Closed-form ideal bubble ratio for this schedule
    /// ([`bubble_fraction_for`] at the 2:1 calibration) — exact for
    /// GPipe/1F1B/ZB-H1, a lower bound for interleaved.
    pub formula_bubble_ratio: f64,
}

/// The per-microbatch forward time the depth sweep runs at (the 40B
/// job's calibration; backward is 2×).
const SWEEP_FWD: SimDuration = SimDuration::from_millis(43);

/// Runs the 4-schedule × depth sweep: every canonical schedule
/// ([`ScheduleKind::ALL`]) across pipeline depths 4–32 at one and two
/// full microbatch rounds per depth. Pure engine geometry — no fill
/// workload — so the sweep isolates exactly what each schedule leaves
/// for PipeFill to fill.
pub fn schedule_depth_sweep() -> Vec<DepthRow> {
    let mut grid = Vec::new();
    for &p in &[4usize, 8, 16, 32] {
        for &m in &[p, 2 * p] {
            for schedule in ScheduleKind::ALL {
                grid.push((schedule, p, m));
            }
        }
    }
    sweep::par_map(grid, |(schedule, p, m)| {
        let timeline = EngineConfig::uniform(schedule, p, m, SWEEP_FWD, SWEEP_FWD * 2).run();
        DepthRow {
            schedule,
            stages: p,
            microbatches: m,
            period_secs: timeline.period.as_secs_f64(),
            bubble_ratio: timeline.bubble_ratio(),
            fillable_ratio: timeline.fillable_ratio(),
            formula_bubble_ratio: bubble_fraction_for(schedule, p, m, 2.0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_shrinks_with_scale() {
        let rows = fig8_schedules(&ExecutorConfig::default());
        let gap = |gpus: usize| {
            let g = rows
                .iter()
                .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::GPipe)
                .unwrap()
                .recovered_tflops;
            let o = rows
                .iter()
                .find(|r| r.gpus == gpus && r.schedule == ScheduleKind::OneFOneB)
                .unwrap()
                .recovered_tflops;
            (g - o) / g
        };
        let low_scale = gap(2048);
        let high_scale = gap(16384);
        // Fig. 8: ~17-20% more recovered with GPipe at small scale,
        // shrinking substantially at large scale (the paper reaches <5%;
        // our packing loses a little more on 1F1B's shorter windows —
        // see EXPERIMENTS.md).
        assert!(low_scale > 0.05, "low-scale gap {low_scale}");
        assert!(
            high_scale < low_scale * 0.6,
            "gap did not close: {low_scale} -> {high_scale}"
        );
        assert!(high_scale < 0.13, "high-scale gap {high_scale}");
    }

    #[test]
    fn depth_sweep_covers_the_full_grid() {
        let rows = schedule_depth_sweep();
        // 4 depths × 2 microbatch points × 4 schedules.
        assert_eq!(rows.len(), 32);
        for r in &rows {
            assert!(r.period_secs > 0.0);
            assert!((0.0..1.0).contains(&r.bubble_ratio), "{r:?}");
            assert!(r.fillable_ratio <= r.bubble_ratio + 1e-12, "{r:?}");
            assert!(r.formula_bubble_ratio <= r.bubble_ratio + 1e-9, "{r:?}");
        }
        for schedule in ScheduleKind::ALL {
            assert_eq!(
                rows.iter().filter(|r| r.schedule == schedule).count(),
                8,
                "{schedule}"
            );
        }
    }

    #[test]
    fn depth_sweep_orders_schedules_at_every_grid_point() {
        let rows = schedule_depth_sweep();
        for &p in &[4usize, 8, 16, 32] {
            for &m in &[p, 2 * p] {
                let at = |schedule: ScheduleKind| {
                    rows.iter()
                        .find(|r| r.schedule == schedule && r.stages == p && r.microbatches == m)
                        .unwrap()
                };
                let gpipe = at(ScheduleKind::GPipe);
                let ofob = at(ScheduleKind::OneFOneB);
                let il = at(ScheduleKind::Interleaved { chunks: 2 });
                let zb = at(ScheduleKind::ZbH1);
                // ZB-H1 ≤ 1F1B ≤ GPipe, with interleaved under 1F1B too
                // (complete rounds everywhere on this grid).
                assert!(zb.bubble_ratio <= ofob.bubble_ratio + 1e-9, "p={p} m={m}");
                assert!(
                    ofob.bubble_ratio <= gpipe.bubble_ratio + 1e-9,
                    "p={p} m={m}"
                );
                assert!(il.bubble_ratio <= ofob.bubble_ratio + 1e-9, "p={p} m={m}");
                // ZB-H1 matches its closed form exactly on this grid.
                assert!(
                    (zb.bubble_ratio - zb.formula_bubble_ratio).abs() < 1e-9,
                    "p={p} m={m}: {} vs {}",
                    zb.bubble_ratio,
                    zb.formula_bubble_ratio
                );
            }
        }
    }

    #[test]
    fn total_bubble_ratio_is_schedule_independent() {
        let rows = fig8_schedules(&ExecutorConfig::default());
        for gpus in [2048usize, 4096, 8192, 16384] {
            let pair: Vec<&ScheduleRow> = rows.iter().filter(|r| r.gpus == gpus).collect();
            assert_eq!(pair.len(), 2);
            // Identical up to the small period difference the inter-stage
            // communication latency introduces between the two schedules.
            assert!(
                (pair[0].bubble_ratio - pair[1].bubble_ratio).abs() < 0.02,
                "bubble ratios diverge at {gpus}: {} vs {}",
                pair[0].bubble_ratio,
                pair[1].bubble_ratio
            );
            // Fillable is never more than total.
            for r in pair {
                assert!(r.fillable_ratio <= r.bubble_ratio + 1e-12);
            }
        }
    }
}
