//! Fig. 7: fill-job characterization — achieved TFLOPS during bubble
//! execution (7a) and slowdown relative to exclusive-GPU execution (7b),
//! per model and job kind. Includes the Algorithm-1-vs-naive-packing
//! ablation called out in `DESIGN.md`.

use pipefill_executor::{
    build_profile, plan_whole_graph_only, ExecConfig, ExecTechnique, ExecutorConfig, FillJobSpec,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::experiments::sweep;
use crate::steady::{steady_rate, SteadyRate};

/// One (model, kind) row of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationRow {
    /// Fill-job model.
    pub model: ModelId,
    /// Training or batch inference.
    pub kind: JobKind,
    /// TFLOPS achieved while executing in bubbles (Fig. 7a).
    pub tflops_during_execution: f64,
    /// Wall-clock throughput relative to exclusive execution (Fig. 7b's
    /// slowdown, as the surviving fraction — ≈0.3 for most types, §6.2).
    pub relative_performance: f64,
    /// Stages (of 16) where some configuration fits.
    pub feasible_stages: usize,
    /// Ablation: TFLOPS recovered by whole-graph-per-bubble packing
    /// (no Algorithm 1), averaged over stages; 0 if infeasible.
    pub naive_recovered_tflops: f64,
    /// Algorithm-1 recovered TFLOPS (for the ablation comparison).
    pub recovered_tflops: f64,
}

/// The (model, kind) pairs of Fig. 7: training and inference for the
/// sub-700M models, inference only for the rest (§5.3's bucketing rule).
pub fn fig7_job_types() -> Vec<(ModelId, JobKind)> {
    let mut out = Vec::new();
    for model in ModelId::FILL_JOBS {
        if model.trainable_as_fill_job() {
            out.push((model, JobKind::Training));
        }
        out.push((model, JobKind::BatchInference));
    }
    out
}

/// Runs the characterization against the paper's default main job (the
/// 8K-GPU 40B setting whose bubbles Fig. 7 measures).
pub fn fig7_characterization(
    main: &MainJobSpec,
    exec: &ExecutorConfig,
) -> Vec<CharacterizationRow> {
    let device = &main.device;
    let timeline = main.engine_timeline();
    let period = timeline.period.as_secs_f64();
    // One profiling/planning task per (model, kind), fanned across cores.
    sweep::par_map(fig7_job_types(), |(model, kind)| {
        {
            let rate: SteadyRate = steady_rate(main, exec, model, kind);
            // Exclusive baseline: best batch on a whole idle GPU.
            let graph = model.build();
            let exclusive = pipefill_executor::exclusive_throughput(
                &graph,
                kind,
                device,
                &FillJobSpec::default_batch_sizes(),
            )
            .map(|(t, _)| t)
            .unwrap_or(0.0);
            let relative = if exclusive == 0.0 {
                0.0
            } else {
                rate.wall_throughput / exclusive
            };

            // Naive-packing ablation: best whole-graph-only plan per stage.
            let mut naive_sum = 0.0;
            for stage in &timeline.stages {
                let slots: Vec<_> = stage
                    .fillable_windows()
                    .iter()
                    .map(|w| (w.duration, w.free_memory))
                    .collect();
                if slots.is_empty() {
                    continue;
                }
                let mut best_rate = 0.0f64;
                for &batch_size in &FillJobSpec::default_batch_sizes() {
                    for &technique in ExecTechnique::applicable(kind) {
                        let profile = build_profile(
                            &graph,
                            kind,
                            ExecConfig {
                                batch_size,
                                technique,
                            },
                            device,
                        );
                        if let Ok(plan) = plan_whole_graph_only(&profile, &slots, exec) {
                            let r = plan.flops_per_pass
                                / (plan.main_iterations_per_pass as f64 * period)
                                / 1e12;
                            best_rate = best_rate.max(r);
                        }
                    }
                }
                naive_sum += best_rate;
            }

            CharacterizationRow {
                model,
                kind,
                tflops_during_execution: rate.tflops_during_execution,
                relative_performance: relative,
                feasible_stages: rate.feasible_stages,
                naive_recovered_tflops: naive_sum / timeline.stages.len() as f64,
                recovered_tflops: rate.recovered_tflops,
            }
        }
    })
}

/// Mix-weighted relative performance `P` for the §6.2 GPUs-saved
/// estimate (`C·B·P`).
pub fn mix_relative_performance(main: &MainJobSpec, exec: &ExecutorConfig, mix: &ModelMix) -> f64 {
    mix_relative_performance_from(&fig7_characterization(main, exec), mix)
}

/// [`mix_relative_performance`] over precomputed characterization rows —
/// the rows depend only on (main job, executor config), so callers
/// weighting several mixes against one main job characterize once.
pub fn mix_relative_performance_from(rows: &[CharacterizationRow], mix: &ModelMix) -> f64 {
    let mut total = 0.0;
    let mut weight_sum = 0.0;
    for &(model, weight) in mix.weights() {
        if weight == 0.0 {
            continue;
        }
        let kinds: Vec<&CharacterizationRow> = rows.iter().filter(|r| r.model == model).collect();
        if kinds.is_empty() {
            continue;
        }
        let avg: f64 =
            kinds.iter().map(|r| r.relative_performance).sum::<f64>() / kinds.len() as f64;
        total += weight * avg;
        weight_sum += weight;
    }
    if weight_sum == 0.0 {
        0.0
    } else {
        total / weight_sum
    }
}

/// Default Fig. 7 context: the 8K-GPU 40B main job.
pub fn fig7_default_main() -> MainJobSpec {
    MainJobSpec::simulator_40b(8, ScheduleKind::GPipe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<CharacterizationRow> {
        fig7_characterization(&fig7_default_main(), &ExecutorConfig::default())
    }

    #[test]
    fn has_eight_job_types() {
        // 3 trainable models × 2 kinds + 2 inference-only models.
        assert_eq!(fig7_job_types().len(), 8);
    }

    #[test]
    fn inference_beats_training_per_model() {
        // Fig. 7a's first observation.
        let rows = rows();
        for model in [ModelId::EfficientNet, ModelId::BertBase, ModelId::BertLarge] {
            let inf = rows
                .iter()
                .find(|r| r.model == model && r.kind == JobKind::BatchInference)
                .unwrap();
            let tr = rows
                .iter()
                .find(|r| r.model == model && r.kind == JobKind::Training)
                .unwrap();
            assert!(
                inf.tflops_during_execution >= tr.tflops_during_execution,
                "{model}: inf {} < train {}",
                inf.tflops_during_execution,
                tr.tflops_during_execution
            );
        }
    }

    #[test]
    fn swin_and_efficientnet_perform_poorly() {
        // Fig. 7a's second observation.
        let rows = rows();
        let tflops = |m: ModelId, k: JobKind| {
            rows.iter()
                .find(|r| r.model == m && r.kind == k)
                .unwrap()
                .tflops_during_execution
        };
        let bert = tflops(ModelId::BertBase, JobKind::BatchInference);
        assert!(tflops(ModelId::SwinLarge, JobKind::BatchInference) < 0.6 * bert);
        assert!(tflops(ModelId::EfficientNet, JobKind::BatchInference) < 0.6 * bert);
    }

    #[test]
    fn xlm_matches_bert_tflops_but_slows_more() {
        // §6.2: "XLM inference recovers similar TFLOPS as BERT inference,
        // \[but\] experiences more slowdown".
        let rows = rows();
        let xlm = rows
            .iter()
            .find(|r| r.model == ModelId::XlmRobertaXl)
            .unwrap();
        let bert = rows
            .iter()
            .find(|r| r.model == ModelId::BertBase && r.kind == JobKind::BatchInference)
            .unwrap();
        let ratio = xlm.tflops_during_execution / bert.tflops_during_execution;
        assert!((0.5..1.5).contains(&ratio), "TFLOPS ratio {ratio}");
        assert!(
            xlm.relative_performance < bert.relative_performance,
            "xlm {} vs bert {}",
            xlm.relative_performance,
            bert.relative_performance
        );
    }

    #[test]
    fn slowdowns_are_substantial_for_everyone() {
        // §6.2: "most of the fill-job workloads we evaluate experience
        // around 30% of exclusive execution" — none approach 1.0.
        for r in rows() {
            assert!(
                r.relative_performance < 0.7,
                "{} {} rel perf {}",
                r.model,
                r.kind,
                r.relative_performance
            );
        }
    }

    #[test]
    fn algorithm1_dominates_naive_packing() {
        for r in rows() {
            assert!(
                r.recovered_tflops >= r.naive_recovered_tflops * 0.999,
                "{} {}: alg1 {} < naive {}",
                r.model,
                r.kind,
                r.recovered_tflops,
                r.naive_recovered_tflops
            );
        }
    }

    #[test]
    fn mix_relative_performance_is_plausible() {
        // §6.2 uses P ≈ 0.3 for the trace mix.
        let p = mix_relative_performance(
            &fig7_default_main(),
            &ExecutorConfig::default(),
            &ModelMix::paper_mix(),
        );
        assert!((0.1..0.6).contains(&p), "P = {p}");
    }
}
