//! Fig. 5: the fill-fraction sweep on the "physical" 5B cluster —
//! main-job overhead stays <2% up to 68% of the bubble filled, then grows
//! while total utilization keeps rising.

use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use serde::{Deserialize, Serialize};

use crate::backend::BackendConfig;
use crate::experiments::sweep;
use crate::physical::PhysicalSimConfig;

/// One fill-fraction point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FillFractionRow {
    /// Fraction of each bubble the Executor fills.
    pub fill_fraction: f64,
    /// Measured main-job slowdown.
    pub main_slowdown: f64,
    /// Fill TFLOPS per GPU recovered.
    pub recovered_tflops: f64,
    /// Total TFLOPS per GPU (main + fill).
    pub total_tflops: f64,
}

/// The sweep points used in Fig. 5 (0 = no filling baseline).
pub const FIG5_FRACTIONS: [f64; 8] = [0.0, 0.2, 0.4, 0.55, 0.68, 0.8, 0.9, 0.97];

/// Runs the sweep on the paper's physical setup: 5B LLM, 16 stages,
/// 8 microbatches (65% bubble ratio), full trace-mix backlog. The points
/// are independent physical-backend runs, so they fan out across cores.
pub fn fig5_fill_fraction(iterations: usize, seed: u64) -> Vec<FillFractionRow> {
    let configs = FIG5_FRACTIONS
        .iter()
        .map(|&f| {
            let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
            let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(f);
            cfg.iterations = iterations;
            cfg.seed = seed;
            BackendConfig::Physical(cfg)
        })
        .collect();
    sweep::run_sweep(configs)
        .into_iter()
        .zip(FIG5_FRACTIONS)
        .map(|(run, f)| {
            let r = run
                .physical()
                .expect("physical config yields physical detail");
            FillFractionRow {
                fill_fraction: f,
                main_slowdown: r.main_slowdown,
                recovered_tflops: r.recovered_tflops_per_gpu,
                total_tflops: r.total_tflops_per_gpu(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_matches_paper() {
        let rows = fig5_fill_fraction(100, 3);
        let at = |f: f64| rows.iter().find(|r| r.fill_fraction == f).unwrap();
        // Baseline: nothing recovered, no overhead.
        assert_eq!(at(0.0).recovered_tflops, 0.0);
        assert_eq!(at(0.0).main_slowdown, 0.0);
        // <2% overhead through the 68% default.
        for f in [0.2, 0.4, 0.55, 0.68] {
            assert!(
                at(f).main_slowdown < 0.02,
                "slowdown at {f} = {}",
                at(f).main_slowdown
            );
        }
        // Substantial overhead when nearly everything is filled.
        assert!(at(0.97).main_slowdown > 0.02, "{}", at(0.97).main_slowdown);
        // Recovered utilization rises monotonically through the default
        // operating range (0 → 68%).
        let in_range: Vec<&FillFractionRow> =
            rows.iter().filter(|r| r.fill_fraction <= 0.69).collect();
        for pair in in_range.windows(2) {
            assert!(
                pair[1].recovered_tflops > pair[0].recovered_tflops,
                "recovered dipped in range: {pair:?}"
            );
        }
        // Beyond the knee, recovered utilization stays in the same band
        // (Algorithm 1's integer graph replication makes it non-monotone
        // there — see EXPERIMENTS.md) and clearly above mid-range fills.
        assert!(at(0.9).recovered_tflops > at(0.55).recovered_tflops);
    }
}
