//! Extension experiment: fault-tolerance what-if.
//!
//! FreeRide-style bubble harvesting only pays off if the side jobs
//! survive the cluster's failure regime: every eviction burns the work
//! since the job's last checkpoint plus a restart tax. This driver sweeps
//! the MTBF × checkpoint-cost grid through the fault backend and reports
//! how much recovered throughput and goodput survive at each point — the
//! operating map for choosing a checkpoint cadence on real clusters.

use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use serde::{Deserialize, Serialize};

use crate::backend::BackendConfig;
use crate::experiments::sweep;
use crate::fault::FaultSimConfig;

/// One MTBF × checkpoint-cost point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWhatIfRow {
    /// Per-device mean time between failures, in seconds
    /// (`f64::INFINITY` = no faults).
    pub mtbf_secs: f64,
    /// Checkpoint-restart cost per eviction, in seconds.
    pub checkpoint_cost_secs: f64,
    /// Device failures injected.
    pub failures: u64,
    /// Fill jobs evicted.
    pub evictions: u64,
    /// Fill FLOPs lost to evictions.
    pub lost_fill_flops: f64,
    /// Surviving fill TFLOPS per GPU.
    pub recovered_tflops: f64,
    /// Fraction of executed fill FLOPs that survived.
    pub goodput_fraction: f64,
    /// Main-job slowdown (fill-overrun stalls; outages attack only the
    /// fill layer).
    pub main_slowdown: f64,
}

/// The MTBF axis, in seconds: 10 min (burn-in-grade), 30 min, 2 h,
/// 8 h, and no faults.
pub const FAULT_MTBFS_SECS: [f64; 5] = [600.0, 1800.0, 7200.0, 28800.0, f64::INFINITY];

/// The checkpoint-cost axis, in seconds of bubble time per restart.
pub const FAULT_CHECKPOINT_COSTS_SECS: [f64; 3] = [0.5, 2.0, 8.0];

/// Builds the fault configuration for one grid point.
pub fn fault_grid_config(
    iterations: usize,
    seed: u64,
    mtbf_secs: f64,
    checkpoint_cost_secs: f64,
) -> FaultSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mtbf = if mtbf_secs.is_finite() {
        SimDuration::from_secs_f64(mtbf_secs)
    } else {
        SimDuration::MAX
    };
    let mut cfg = FaultSimConfig::new(main)
        .with_mtbf(mtbf)
        .with_checkpoint_cost(SimDuration::from_secs_f64(checkpoint_cost_secs));
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg
}

/// Runs the MTBF × checkpoint-cost sweep; grid points fan out across
/// cores in row-major order (MTBF outer, checkpoint cost inner).
pub fn whatif_faults(iterations: usize, seed: u64) -> Vec<FaultWhatIfRow> {
    let grid: Vec<(f64, f64)> = FAULT_MTBFS_SECS
        .iter()
        .flat_map(|&m| FAULT_CHECKPOINT_COSTS_SECS.iter().map(move |&c| (m, c)))
        .collect();
    sweep::par_map(grid, |(mtbf_secs, ckpt_secs)| {
        let cfg = fault_grid_config(iterations, seed, mtbf_secs, ckpt_secs);
        let run = BackendConfig::Fault(cfg).run();
        let detail = run.fault().expect("fault config yields fault detail");
        FaultWhatIfRow {
            mtbf_secs,
            checkpoint_cost_secs: ckpt_secs,
            failures: detail.failures,
            evictions: detail.evictions,
            lost_fill_flops: detail.lost_fill_flops,
            recovered_tflops: detail.recovered_tflops_per_gpu,
            goodput_fraction: detail.goodput_fraction,
            main_slowdown: detail.main_slowdown,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_grid_covers_both_axes_and_degrades_gracefully() {
        let rows = whatif_faults(40, 7);
        assert_eq!(
            rows.len(),
            FAULT_MTBFS_SECS.len() * FAULT_CHECKPOINT_COSTS_SECS.len()
        );
        // The no-fault corner is clean…
        let clean = rows.last().unwrap();
        assert!(clean.mtbf_secs.is_infinite());
        assert_eq!(clean.evictions, 0);
        assert_eq!(clean.goodput_fraction, 1.0);
        // …and the burn-in corner visibly is not.
        let harsh = rows.first().unwrap();
        assert_eq!(harsh.mtbf_secs, 600.0);
        assert!(harsh.failures > 0);
        assert!(harsh.recovered_tflops < clean.recovered_tflops);
        // Every row is finite and sane.
        for r in &rows {
            assert!(r.recovered_tflops.is_finite() && r.recovered_tflops >= 0.0);
            assert!((0.0..=1.0).contains(&r.goodput_fraction));
            assert!(r.main_slowdown >= 0.0);
        }
    }

    // The MTBF=∞-renders-as-'none' pin moved next to the generic CSV
    // path: see `faults_table_renders_disabled_injection_as_none_not_inf`
    // in pipefill-scenario's registry tests.
}
