//! Steady-state fast-forward: cycle detection over iteration signatures.
//!
//! The fine-grained backends simulate every bubble of every iteration, but
//! over a week-long fleet horizon almost all of that work is repetitive
//! steady state. This module implements the detection half of the
//! fast-forward machinery: each backend summarizes its *complete*
//! behavioral state at every iteration boundary into a signature (a
//! `Vec<u64>` of exact bit patterns — accumulator bits, plan identities,
//! executor cursors), and the [`SteadyDetector`] looks for a previous
//! boundary with an identical signature. Because the signature captures
//! everything that determines future behavior, a repeated signature proves
//! the simulation has entered a cycle: the iterations between the two
//! boundaries will repeat verbatim, forever, until an external transition
//! (a fault, an arrival, the horizon) perturbs the state.
//!
//! Once a cycle of length `L` is confirmed, the backend skips `M` whole
//! cycles in O(cycle) time by *replaying the recorded per-iteration
//! effects* `M` times — floating-point accumulator updates are applied in
//! the exact order and magnitude the event loop would have produced, so
//! the skip is bit-for-bit identical to simulating the events, not merely
//! close. Clocks and integer counters advance in closed form.
//!
//! # Randomness gates the whole mechanism
//!
//! A signature match only proves determinism if no randomness is consumed
//! inside the cycle (jitter draws would make "identical state" a lie).
//! The detector therefore tracks the backend RNG's
//! [`state_fingerprint`](pipefill_sim_core::rng::DeterministicRng::state_fingerprint)
//! across iteration boundaries and arms itself only while the fingerprint
//! is frozen. Jittered runs — the default fidelity — keep the detector
//! permanently disarmed at the cost of one fingerprint compare per
//! iteration, which also guarantees their event-by-event results are
//! untouched by this feature.

use std::collections::VecDeque;

use pipefill_sim_core::SimDuration;

/// Absolute monotone counters sampled at an iteration boundary; the
/// detector differences consecutive samples to get per-iteration deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SteadyCounters {
    /// Fill jobs completed (absolute).
    pub completions: u64,
    /// Fill jobs drawn from the backlog (absolute; advances job ids).
    pub draws: u64,
    /// Backend-specific third counter (physical: isolated OOMs, fault:
    /// bubbles lost to downtime) — zero in quiescent runs but carried so
    /// the replay stays fully general.
    pub aux: u64,
}

impl SteadyCounters {
    fn delta(self, earlier: SteadyCounters) -> SteadyCounters {
        SteadyCounters {
            completions: self.completions - earlier.completions,
            draws: self.draws - earlier.draws,
            aux: self.aux - earlier.aux,
        }
    }
}

/// Everything one iteration did to the backend's monotone accumulators,
/// in exact order. Replaying the record reproduces the iteration's metric
/// updates bit for bit.
#[derive(Debug, Clone, Default)]
pub(crate) struct IterRecord {
    /// Per-bubble FLOP additions in event order.
    pub flops: Vec<f64>,
    /// Critical-path stall folded into the clock at the iteration end.
    pub delay: SimDuration,
    /// Counter deltas over the iteration.
    pub counters: SteadyCounters,
    /// Ids of fill jobs completed during the iteration. Ids are the only
    /// non-cyclic part of the state (each cycle's ids sit exactly
    /// `draws`-per-cycle above the previous cycle's), so replay shifts
    /// them by that stride per skipped cycle.
    pub completed: Vec<u64>,
}

/// A confirmed cycle and how many times to replay it.
#[derive(Debug)]
pub(crate) struct Skip {
    /// Whole cycles to skip.
    pub cycles: u64,
    /// Iterations per cycle.
    pub len: u64,
    /// Sum of the per-iteration clock stalls across one cycle.
    pub delay_sum: SimDuration,
    /// Counter deltas across one cycle.
    pub counters: SteadyCounters,
    /// The cycle's iteration records, oldest first.
    pub records: Vec<IterRecord>,
}

impl Skip {
    /// Total iterations skipped.
    pub fn iterations(&self) -> u64 {
        self.cycles * self.len
    }
}

struct HistEntry {
    hash: u64,
    sig: Vec<u64>,
    rec: IterRecord,
}

/// FxHash-style mixing — cheap, deterministic across platforms, and only
/// used to pre-filter exact `Vec<u64>` comparisons.
fn hash_sig(sig: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in sig {
        h = (h ^ w).wrapping_mul(0x0100_0000_01b3).rotate_left(5);
    }
    h
}

/// Detects steady-state cycles at iteration boundaries. One instance per
/// independent iteration stream (the whole backend for physical/fault,
/// one per job for the fleet).
#[derive(Debug)]
pub(crate) struct SteadyDetector {
    enabled: bool,
    /// Signature matches required before the first skip; `u32::MAX` is
    /// the degenerate "never fast-forward" pin.
    confirm: u32,
    matches_seen: u32,
    last_fp: Option<[u64; 6]>,
    /// True while the RNG fingerprint has been frozen across at least one
    /// full iteration, i.e. the current iteration is being recorded.
    active: bool,
    hist: VecDeque<HistEntry>,
    cap: usize,
    cur_flops: Vec<f64>,
    cur_completed: Vec<u64>,
    /// Counters at the last recorded boundary.
    snap: SteadyCounters,
    /// Counters at the boundary currently being observed.
    pending: SteadyCounters,
}

impl std::fmt::Debug for HistEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistEntry")
            .field("hash", &self.hash)
            .finish()
    }
}

impl SteadyDetector {
    /// Creates a detector. `cap` bounds the signature history, which
    /// bounds both memory and the longest detectable cycle.
    pub fn new(enabled: bool, confirm: u32, cap: usize) -> Self {
        SteadyDetector {
            enabled,
            confirm,
            matches_seen: 0,
            last_fp: None,
            active: false,
            hist: VecDeque::new(),
            cap,
            cur_flops: Vec::new(),
            cur_completed: Vec::new(),
            snap: SteadyCounters::default(),
            pending: SteadyCounters::default(),
        }
    }

    /// Whether fast-forward is on at all (the cheap outer gate for every
    /// hot-path call below).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one bubble's FLOP contribution. No-op unless the detector
    /// is armed, so jittered runs pay a single branch.
    #[inline]
    pub fn record_flops(&mut self, flops: f64) {
        if self.active {
            self.cur_flops.push(flops);
        }
    }

    /// Records a fill-job completion (by id). No-op unless armed.
    #[inline]
    pub fn record_completion(&mut self, id: u64) {
        if self.active {
            self.cur_completed.push(id);
        }
    }

    /// Phase 1 of an iteration boundary: quiescence bookkeeping. Returns
    /// `true` when the caller should build a full state signature and
    /// finish the boundary with [`Self::end_iteration`]. Must be called
    /// with the RNG fingerprint and the *current absolute* counters.
    pub fn observe(&mut self, fp: [u64; 6], counters: SteadyCounters) -> bool {
        if !self.enabled {
            return false;
        }
        let quiescent = self.last_fp == Some(fp);
        self.last_fp = Some(fp);
        self.pending = counters;
        if !quiescent {
            // Randomness was consumed: any cycle hypothesis is void.
            self.reset();
            self.snap = counters;
            return false;
        }
        if !self.active {
            // The fingerprint just proved frozen across one boundary, but
            // that iteration ran before recording was armed. Arm now and
            // record from the next iteration on.
            self.active = true;
            self.cur_flops.clear();
            self.cur_completed.clear();
            self.snap = counters;
            return false;
        }
        true
    }

    /// Phase 2: closes the iteration with its post-state signature and
    /// clock stall, then hunts for a cycle. Returns a [`Skip`] when a
    /// confirmed cycle allows skipping at least one whole cycle within
    /// `remaining` iterations (one iteration is always left to run for
    /// real so the final iteration boundary fires as a genuine event).
    pub fn end_iteration(
        &mut self,
        sig: Vec<u64>,
        delay: SimDuration,
        remaining: u64,
    ) -> Option<Skip> {
        debug_assert!(self.active, "end_iteration without a true observe()");
        let rec = IterRecord {
            flops: std::mem::take(&mut self.cur_flops),
            completed: std::mem::take(&mut self.cur_completed),
            delay,
            counters: self.pending.delta(self.snap),
        };
        self.snap = self.pending;
        if self.hist.len() == self.cap {
            self.hist.pop_front();
        }
        let hash = hash_sig(&sig);
        self.hist.push_back(HistEntry { hash, sig, rec });

        // Scan backwards (nearest previous boundary first → minimal cycle
        // length) for a boundary with an identical signature.
        let n = self.hist.len();
        let cur = &self.hist[n - 1];
        let mut found = None;
        for i in (0..n - 1).rev() {
            let e = &self.hist[i];
            if e.hash == cur.hash && e.sig == cur.sig {
                found = Some(i);
                break;
            }
        }
        let i = found?;
        self.matches_seen = self.matches_seen.saturating_add(1);
        if self.confirm == u32::MAX || self.matches_seen < self.confirm {
            return None;
        }
        let len = (n - 1 - i) as u64;
        let cycles = remaining.saturating_sub(1) / len;
        if cycles == 0 {
            return None;
        }
        let records: Vec<IterRecord> = self.hist.range(i + 1..n).map(|e| e.rec.clone()).collect();
        let delay_sum = records.iter().map(|r| r.delay).sum();
        let counters = records
            .iter()
            .fold(SteadyCounters::default(), |acc, r| SteadyCounters {
                completions: acc.completions + r.counters.completions,
                draws: acc.draws + r.counters.draws,
                aux: acc.aux + r.counters.aux,
            });
        Some(Skip {
            cycles,
            len,
            delay_sum,
            counters,
            records,
        })
    }

    /// Discards every cycle hypothesis (history, partial records, match
    /// streak). Called whenever randomness was consumed or an external
    /// transition (fault, arrival, eviction) perturbs the state.
    pub fn reset(&mut self) {
        self.active = false;
        self.matches_seen = 0;
        self.hist.clear();
        self.cur_flops.clear();
        self.cur_completed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_sim_core::rng::DeterministicRng;

    fn fp(rng: &DeterministicRng) -> [u64; 6] {
        rng.state_fingerprint()
    }

    #[test]
    fn disabled_detector_is_inert() {
        let mut d = SteadyDetector::new(false, 1, 16);
        assert!(!d.enabled());
        let rng = DeterministicRng::seed_from(1);
        assert!(!d.observe(fp(&rng), SteadyCounters::default()));
        d.record_flops(1.0);
        assert!(d.cur_flops.is_empty());
    }

    #[test]
    fn arms_only_after_a_frozen_fingerprint_boundary() {
        let mut d = SteadyDetector::new(true, 1, 16);
        let mut rng = DeterministicRng::seed_from(2);
        // First boundary: no baseline yet.
        assert!(!d.observe(fp(&rng), SteadyCounters::default()));
        // Consuming randomness keeps it disarmed.
        let _ = rng.uniform(0.0, 1.0);
        assert!(!d.observe(fp(&rng), SteadyCounters::default()));
        // One frozen boundary arms recording…
        assert!(!d.observe(fp(&rng), SteadyCounters::default()));
        // …and the next frozen boundary asks for a signature.
        assert!(d.observe(fp(&rng), SteadyCounters::default()));
    }

    #[test]
    fn period_two_cycle_is_detected_and_scaled() {
        let mut d = SteadyDetector::new(true, 1, 16);
        let rng = DeterministicRng::seed_from(3);
        let c = SteadyCounters::default();
        assert!(!d.observe(fp(&rng), c)); // baseline
        assert!(!d.observe(fp(&rng), c)); // arm
                                          // States alternate A, B, A, B…
        assert!(d.observe(fp(&rng), c));
        assert!(d
            .end_iteration(vec![0xa], SimDuration::from_secs(1), 1000)
            .is_none());
        assert!(d.observe(fp(&rng), c));
        assert!(d
            .end_iteration(vec![0xb], SimDuration::from_secs(2), 999)
            .is_none());
        assert!(d.observe(fp(&rng), c));
        let skip = d
            .end_iteration(vec![0xa], SimDuration::from_secs(1), 998)
            .expect("A repeated: cycle of length 2");
        assert_eq!(skip.len, 2);
        // (998 - 1) / 2 whole cycles fit while leaving one real iteration.
        assert_eq!(skip.cycles, 498);
        assert_eq!(skip.iterations(), 996);
        assert_eq!(skip.records.len(), 2);
        assert_eq!(skip.delay_sum, SimDuration::from_secs(3));
    }

    #[test]
    fn confirm_streak_delays_the_first_skip() {
        let mut d = SteadyDetector::new(true, 3, 16);
        let rng = DeterministicRng::seed_from(4);
        let c = SteadyCounters::default();
        assert!(!d.observe(fp(&rng), c));
        assert!(!d.observe(fp(&rng), c));
        for round in 0..3 {
            assert!(d.observe(fp(&rng), c));
            assert!(
                d.end_iteration(vec![7], SimDuration::ZERO, 500).is_none(),
                "skip before the confirm streak (round {round})"
            );
        }
        // The first boundary can never match (empty history), so the
        // three loop rounds produced matches 0, 1 and 2; the next match
        // is the third and completes the confirm streak.
        assert!(d.observe(fp(&rng), c));
        assert!(d.end_iteration(vec![7], SimDuration::ZERO, 500).is_some());
    }

    #[test]
    fn confirm_max_never_skips() {
        let mut d = SteadyDetector::new(true, u32::MAX, 16);
        let rng = DeterministicRng::seed_from(5);
        let c = SteadyCounters::default();
        assert!(!d.observe(fp(&rng), c));
        assert!(!d.observe(fp(&rng), c));
        for _ in 0..100 {
            assert!(d.observe(fp(&rng), c));
            assert!(d
                .end_iteration(vec![9], SimDuration::ZERO, 10_000)
                .is_none());
        }
    }

    #[test]
    fn randomness_voids_the_hypothesis() {
        let mut d = SteadyDetector::new(true, 1, 16);
        let mut rng = DeterministicRng::seed_from(6);
        let c = SteadyCounters::default();
        assert!(!d.observe(fp(&rng), c));
        assert!(!d.observe(fp(&rng), c));
        assert!(d.observe(fp(&rng), c));
        assert!(d.end_iteration(vec![1], SimDuration::ZERO, 100).is_none());
        let _ = rng.uniform(0.0, 1.0); // perturb
        assert!(!d.observe(fp(&rng), c)); // disarmed again
        assert!(!d.observe(fp(&rng), c)); // re-arm
        assert!(d.observe(fp(&rng), c));
        // History was wiped: the matching signature from before the
        // perturbation no longer counts.
        assert!(d.end_iteration(vec![1], SimDuration::ZERO, 100).is_none());
        assert!(d.observe(fp(&rng), c));
        assert!(d.end_iteration(vec![1], SimDuration::ZERO, 100).is_some());
    }

    #[test]
    fn counter_deltas_and_records_replay_exactly() {
        let mut d = SteadyDetector::new(true, 1, 16);
        let rng = DeterministicRng::seed_from(7);
        let at = |n: u64| SteadyCounters {
            completions: n,
            draws: 2 * n,
            aux: 0,
        };
        assert!(!d.observe(fp(&rng), at(0)));
        assert!(!d.observe(fp(&rng), at(1)));
        assert!(d.observe(fp(&rng), at(2)));
        d.record_flops(1.5);
        d.record_completion(40);
        assert!(d.end_iteration(vec![5], SimDuration::ZERO, 100).is_none());
        assert!(d.observe(fp(&rng), at(3)));
        d.record_flops(2.5);
        d.record_completion(41);
        let skip = d
            .end_iteration(vec![5], SimDuration::ZERO, 100)
            .expect("cycle of length 1");
        assert_eq!(skip.len, 1);
        assert_eq!(skip.counters.completions, 1);
        assert_eq!(skip.counters.draws, 2);
        assert_eq!(skip.records[0].flops, vec![2.5]);
        assert_eq!(skip.records[0].completed, vec![41]);
    }

    #[test]
    fn history_cap_bounds_detectable_cycles() {
        let mut d = SteadyDetector::new(true, 1, 3);
        let rng = DeterministicRng::seed_from(8);
        let c = SteadyCounters::default();
        assert!(!d.observe(fp(&rng), c));
        assert!(!d.observe(fp(&rng), c));
        // A cycle of length 4 never fits in a 3-entry history.
        for sig in [1u64, 2, 3, 4, 1, 2, 3, 4, 1, 2] {
            assert!(d.observe(fp(&rng), c));
            assert!(d.end_iteration(vec![sig], SimDuration::ZERO, 100).is_none());
        }
    }
}
