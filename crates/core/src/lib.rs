//! # pipefill-core
//!
//! The PipeFill system (§4): the integration of the instrumented pipeline
//! engine, the per-device Fill Job Executors and the Fill Job Scheduler
//! into a cluster-level simulation, plus the experiment drivers that
//! regenerate every figure of the paper's evaluation (§6).
//!
//! Three simulators are provided; the first two mirror the paper's
//! methodology (§5.1):
//!
//! * [`ClusterSim`] — the *coarse, profile-driven* simulator. Like the
//!   paper's, its events are fill-job arrivals and completions; the time
//!   in between is computed from execution plans ("deep learning jobs
//!   have repetitive patterns, so an accurate simulator only needs to
//!   profile a pattern once").
//! * [`PhysicalSim`] — the *fine-grained* stand-in for the paper's 16-GPU
//!   physical cluster: it executes every bubble of every iteration with
//!   multiplicative timing jitter, explicit context-switch costs and
//!   engine slack, so main-job slowdown is an emergent measurement rather
//!   than an assumption. Comparing the two reproduces the paper's
//!   simulator-validation experiment (Fig. 6, max error <2%).
//! * [`FaultSim`] — the *heterogeneous, failure-injecting* extension of
//!   the fine-grained model: per-stage GPU specs reshape bubble geometry
//!   and fill throughput, and seeded device failures evict running fill
//!   jobs with FreeRide-style checkpoint/restart accounting. With faults
//!   off and a homogeneous cluster it reproduces [`PhysicalSim`] bit for
//!   bit.
//! * [`FleetSim`] — the *fleet-scale multi-job* simulator: N concurrent
//!   pipeline-parallel main jobs (heterogeneous depths, periods, device
//!   generations) on one kernel, sharing one cluster-wide fill queue
//!   with per-job admission and locality-aware dispatch. A 1-job
//!   homogeneous fleet reproduces [`PhysicalSim`] bit for bit.
//!
//! All are [`SimBackend`]s over the shared [`ClusterEvent`] alphabet,
//! driven by the `pipefill-sim-core` kernel through [`BackendDriver`];
//! experiment drivers select fidelity by value with [`BackendConfig`] and
//! read the common [`BackendMetrics`] (see the `backend` module docs).
//!
//! The [`experiments`] module contains one driver per table/figure; each
//! returns typed rows, prints the same series the paper plots, and writes
//! CSV under `target/experiments/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod cluster;
mod convert;
mod csv;
mod fault;
mod ff;
mod fleet;
mod metrics;
mod physical;
mod steady;

pub mod experiments;

pub use backend::{
    BackendConfig, BackendDetail, BackendDriver, BackendKind, BackendMetrics, BackendRun,
    ClusterEvent, SimBackend,
};
pub use cluster::{
    ClusterSim, ClusterSimConfig, ClusterSimResult, CoarseBackend, CompletedJob, PolicyKind,
};
pub use convert::{kind_allowed, samples_for_trace_job, trace_job_to_spec};
pub use csv::{experiments_dir, CsvWriter};
pub use fault::{FaultBackend, FaultSim, FaultSimConfig, FaultSimResult};
pub use fleet::{
    FleetBackend, FleetJobConfig, FleetJobResult, FleetSim, FleetSimConfig, FleetSimResult,
};
pub use metrics::{gpus_saved, JctStats, UtilizationBreakdown};
pub use physical::{PhysicalBackend, PhysicalSim, PhysicalSimConfig, PhysicalSimResult};
pub use steady::{stage_plans, steady_rate, steady_recovered_tflops, SteadyRate};
