//! The fidelity-polymorphic simulation backend layer.
//!
//! The paper evaluates PipeFill with two simulators that must agree: a
//! coarse profile-driven one whose events are fill-job arrivals and
//! completions (§5.1), and a fine-grained stand-in for the 16-GPU physical
//! cluster validated against it in Fig. 6. Both are expressed here as
//! [`SimBackend`]s over one shared event alphabet ([`ClusterEvent`]) and
//! driven by the same `pipefill_sim_core` kernel — the backends own *state*,
//! the kernel owns *time*. That split is what makes the Fig. 6 validation an
//! apples-to-apples comparison (identical event ordering and RNG machinery,
//! different fidelity), and it leaves a single seam for future backends:
//! heterogeneous clusters, failure injection, trace replay.
//!
//! Selection is by value, not by type: experiment drivers build a
//! [`BackendConfig`] (an enum over the per-fidelity configurations) and call
//! [`BackendConfig::run`], which returns the fidelity-independent
//! [`BackendMetrics`] plus the backend-specific detail.

use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation, StepOutcome};
use serde::{Deserialize, Serialize};

use crate::cluster::{ClusterSimConfig, ClusterSimResult, CoarseBackend};
use crate::fault::{FaultBackend, FaultSimConfig, FaultSimResult};
use crate::fleet::{FleetBackend, FleetSimConfig, FleetSimResult};
use crate::physical::{PhysicalBackend, PhysicalSimConfig, PhysicalSimResult};

/// Which fidelity level a simulation runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Profile-driven: events are job arrivals/completions; the time in
    /// between is replayed from execution plans (§5.1).
    Coarse,
    /// Fine-grained: every bubble of every iteration executes with timing
    /// jitter, context-switch costs and engine slack (§6.1's testbed).
    Physical,
    /// Fine-grained plus heterogeneous per-stage GPUs and seeded
    /// failure/recovery injection with FreeRide-style fill-job eviction
    /// accounting.
    Fault,
    /// Fleet-scale: many concurrent pipeline-parallel main jobs sharing
    /// one cluster-wide fill queue on a single event kernel.
    Fleet,
}

impl BackendKind {
    /// All backends, for sweeps and CLI listings.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Coarse,
        BackendKind::Physical,
        BackendKind::Fault,
        BackendKind::Fleet,
    ];
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Coarse => write!(f, "coarse"),
            BackendKind::Physical => write!(f, "physical"),
            BackendKind::Fault => write!(f, "fault"),
            BackendKind::Fleet => write!(f, "fleet"),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "coarse" | "sim" | "cluster" => Ok(BackendKind::Coarse),
            "physical" | "phys" | "fine" => Ok(BackendKind::Physical),
            "fault" | "faults" | "hetero" => Ok(BackendKind::Fault),
            "fleet" | "multi" | "multi-job" => Ok(BackendKind::Fleet),
            other => Err(format!(
                "unknown backend '{other}' (coarse|physical|fault|fleet)"
            )),
        }
    }
}

/// The shared event alphabet. Each backend uses the subset matching its
/// fidelity; sharing one alphabet keeps the kernel, queue and driver
/// monomorphic so backends can be swapped behind a value-level enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A fill job arrived (index into the backend's arrival list).
    JobArrival(usize),
    /// The fill job running on `device` completed.
    JobCompletion {
        /// Device whose job finished.
        device: usize,
    },
    /// Execute the bubbles of one pipeline stage for the current main-job
    /// iteration (fine-grained backends only).
    StageBubbles {
        /// Pipeline stage index.
        stage: usize,
    },
    /// A main-job iteration boundary: aggregate per-stage stalls into the
    /// pipeline's critical path (fine-grained backends only).
    IterationEnd,
    /// Iteration boundary of one main job of a fleet (`stage` fields of
    /// fleet events are *flat* indices over all pipelines; this carries
    /// the job whose pipeline wrapped). Fleet backends only.
    JobIterationEnd {
        /// Fleet main-job index.
        job: usize,
    },
    /// The GPU driving `device` failed: evict its fill job and take the
    /// stage down until recovery (failure-injecting backends only).
    DeviceFailure {
        /// Device (pipeline stage) that failed.
        device: usize,
    },
    /// The GPU driving `device` came back: re-admit fill work and schedule
    /// the next failure (failure-injecting backends only).
    DeviceRecovery {
        /// Device (pipeline stage) that recovered.
        device: usize,
    },
}

/// Fidelity-independent metrics every backend reports; the common currency
/// of the Fig. 6 agreement test and the parallel sweep driver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendMetrics {
    /// Which backend produced this.
    pub kind: BackendKind,
    /// Devices simulated.
    pub num_devices: usize,
    /// Simulated span the rates below are normalized over.
    pub elapsed: SimDuration,
    /// Events the kernel dispatched.
    pub events_dispatched: u64,
    /// Fill FLOPs executed within `elapsed`.
    pub fill_flops: f64,
    /// Fill TFLOPS per GPU recovered from bubbles.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU (slowdown-adjusted where measured).
    pub main_tflops_per_gpu: f64,
    /// Main-job slowdown caused by filling (0 where the fidelity level
    /// models no interference).
    pub main_slowdown: f64,
    /// Engine bubble ratio of the main job.
    pub bubble_ratio: f64,
    /// Fill jobs completed.
    pub jobs_completed: usize,
    /// Fill jobs evicted by injected device failures (0 where the
    /// fidelity level models no faults).
    pub evictions: u64,
    /// Fill FLOPs executed but lost to evictions (work since the evicted
    /// job's last checkpoint).
    pub lost_fill_flops: f64,
    /// Fraction of executed fill FLOPs that survived eviction:
    /// `fill_flops / (fill_flops + lost_fill_flops)`, 1 when nothing ran.
    pub goodput_fraction: f64,
}

impl BackendMetrics {
    /// Aggregate TFLOPS per GPU (main + fill).
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }

    /// Goodput fraction from surviving/lost FLOPs (1 when nothing ran).
    pub fn goodput_of(surviving: f64, lost: f64) -> f64 {
        let executed = surviving + lost;
        if executed == 0.0 {
            1.0
        } else {
            surviving / executed
        }
    }
}

/// A cluster-simulation backend driven by the `sim-core` event kernel.
///
/// A backend never owns a time loop: it schedules [`ClusterEvent`]s, reacts
/// to them in [`EventHandler::handle`], and reads the clock the kernel
/// hands it. The lifecycle is `prime` → kernel dispatch (fine-grained
/// backends route each bubble window of a `StageBubbles` event through
/// their own [`SimBackend::on_bubble`]) → `drain` → `metrics`.
pub trait SimBackend: EventHandler<Event = ClusterEvent> {
    /// Which fidelity level this backend implements.
    fn kind(&self) -> BackendKind;

    /// Schedules the initial event set (trace arrivals, first-iteration
    /// bubbles, …) into the kernel.
    fn prime(&mut self, sim: &mut Simulation<ClusterEvent>);

    /// Dispatch horizon: events beyond it stay queued. `None` runs until
    /// the queue drains.
    fn horizon(&self) -> Option<SimTime> {
        None
    }

    /// Executes one bubble window of `stage`. Fine-grained backends do the
    /// per-bubble work (context switch, fill partition, jitter) here;
    /// backends whose unit of progress is coarser than a bubble keep the
    /// default no-op.
    fn on_bubble(
        &mut self,
        now: SimTime,
        stage: usize,
        slot: usize,
        queue: &mut EventQueue<ClusterEvent>,
    ) {
        let _ = (now, stage, slot, queue);
    }

    /// Final accounting once the kernel stops dispatching; `now` is the
    /// firing time of the last event.
    fn drain(&mut self, now: SimTime);

    /// Extracts the fidelity-independent metrics. Only valid after
    /// [`SimBackend::drain`].
    fn metrics(&self, events_dispatched: u64) -> BackendMetrics;
}

/// Owns the kernel plus a backend; supports single-stepping (for tests and
/// debuggers) and run-to-completion.
#[derive(Debug)]
pub struct BackendDriver<B: SimBackend> {
    sim: Simulation<ClusterEvent>,
    backend: B,
}

impl<B: SimBackend> BackendDriver<B> {
    /// Creates the kernel and primes the backend's initial events.
    pub fn new(mut backend: B) -> Self {
        let mut sim = Simulation::new();
        backend.prime(&mut sim);
        BackendDriver { sim, backend }
    }

    /// Dispatches one event.
    pub fn step(&mut self) -> StepOutcome {
        let horizon = self.backend.horizon();
        self.sim.step(&mut self.backend, horizon)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The backend being driven.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Runs to completion and returns the metrics plus the backend (for
    /// fidelity-specific detail extraction).
    pub fn run(mut self) -> (BackendMetrics, B) {
        let horizon = self.backend.horizon();
        self.sim.run(&mut self.backend, horizon);
        self.backend.drain(self.sim.now());
        let metrics = self.backend.metrics(self.sim.dispatched());
        (metrics, self.backend)
    }
}

/// Backend selection by value: the configuration for one simulation run at
/// a chosen fidelity. This is what experiment drivers, the CLI and the
/// sweep driver pass around.
#[derive(Debug, Clone)]
pub enum BackendConfig {
    /// Run the coarse profile-driven backend.
    Coarse(ClusterSimConfig),
    /// Run the fine-grained physical backend.
    Physical(PhysicalSimConfig),
    /// Run the heterogeneous, failure-injecting backend.
    Fault(FaultSimConfig),
    /// Run the fleet-scale multi-job backend.
    Fleet(FleetSimConfig),
}

impl BackendConfig {
    /// Which backend this configuration selects.
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendConfig::Coarse(_) => BackendKind::Coarse,
            BackendConfig::Physical(_) => BackendKind::Physical,
            BackendConfig::Fault(_) => BackendKind::Fault,
            BackendConfig::Fleet(_) => BackendKind::Fleet,
        }
    }

    /// Builds the backend, drives it through the shared kernel, and
    /// returns metrics plus detail.
    pub fn run(self) -> BackendRun {
        match self {
            BackendConfig::Coarse(config) => {
                let (metrics, backend) = BackendDriver::new(CoarseBackend::new(config)).run();
                BackendRun {
                    metrics,
                    detail: BackendDetail::Coarse(backend.into_result()),
                }
            }
            BackendConfig::Physical(config) => {
                let (metrics, backend) = BackendDriver::new(PhysicalBackend::new(config)).run();
                BackendRun {
                    metrics,
                    detail: BackendDetail::Physical(backend.into_result()),
                }
            }
            BackendConfig::Fault(config) => {
                let (metrics, backend) = BackendDriver::new(FaultBackend::new(config)).run();
                BackendRun {
                    metrics,
                    detail: BackendDetail::Fault(backend.into_result()),
                }
            }
            BackendConfig::Fleet(config) => {
                let (metrics, backend) = BackendDriver::new(FleetBackend::new(config)).run();
                BackendRun {
                    metrics,
                    detail: BackendDetail::Fleet(backend.into_result()),
                }
            }
        }
    }
}

/// One finished backend run.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// The fidelity-independent metrics.
    pub metrics: BackendMetrics,
    /// The backend-specific detail.
    pub detail: BackendDetail,
}

/// Fidelity-specific results.
#[derive(Debug, Clone)]
pub enum BackendDetail {
    /// Full coarse-simulation output (per-job records, JCT, deadlines).
    Coarse(ClusterSimResult),
    /// Full physical-simulation output (slowdown, OOM isolation).
    Physical(PhysicalSimResult),
    /// Full fault-simulation output (failures, evictions, goodput).
    Fault(FaultSimResult),
    /// Full fleet-simulation output (per-job and aggregate metrics,
    /// global-queue statistics).
    Fleet(FleetSimResult),
}

impl BackendRun {
    /// The fidelity-independent metrics, by reference (the field is
    /// `Copy`, but the accessor pairs with [`BackendRun::detail`] for
    /// generic callers).
    pub fn metrics(&self) -> &BackendMetrics {
        &self.metrics
    }

    /// The backend-specific detail, by reference. Borrowing callers
    /// (conformance suites comparing a run against its metrics, report
    /// printers) use this instead of cloning the whole run just to feed
    /// one of the consuming accessors below.
    pub fn detail(&self) -> &BackendDetail {
        &self.detail
    }

    /// The coarse detail by reference, if this was a coarse run.
    pub fn as_coarse(&self) -> Option<&ClusterSimResult> {
        match &self.detail {
            BackendDetail::Coarse(r) => Some(r),
            _ => None,
        }
    }

    /// The physical detail by reference, if this was a physical run.
    pub fn as_physical(&self) -> Option<&PhysicalSimResult> {
        match &self.detail {
            BackendDetail::Physical(r) => Some(r),
            _ => None,
        }
    }

    /// The fault detail by reference, if this was a fault run.
    pub fn as_fault(&self) -> Option<&FaultSimResult> {
        match &self.detail {
            BackendDetail::Fault(r) => Some(r),
            _ => None,
        }
    }

    /// The fleet detail by reference, if this was a fleet run.
    pub fn as_fleet(&self) -> Option<&FleetSimResult> {
        match &self.detail {
            BackendDetail::Fleet(r) => Some(r),
            _ => None,
        }
    }

    /// The coarse detail, if this was a coarse run.
    pub fn coarse(self) -> Option<ClusterSimResult> {
        match self.detail {
            BackendDetail::Coarse(r) => Some(r),
            _ => None,
        }
    }

    /// The physical detail, if this was a physical run.
    pub fn physical(self) -> Option<PhysicalSimResult> {
        match self.detail {
            BackendDetail::Physical(r) => Some(r),
            _ => None,
        }
    }

    /// The fault detail, if this was a fault run.
    pub fn fault(self) -> Option<FaultSimResult> {
        match self.detail {
            BackendDetail::Fault(r) => Some(r),
            _ => None,
        }
    }

    /// The fleet detail, if this was a fleet run.
    pub fn fleet(self) -> Option<FleetSimResult> {
        match self.detail {
            BackendDetail::Fleet(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::{MainJobSpec, ScheduleKind};
    use pipefill_trace::TraceConfig;

    fn coarse_config(seed: u64) -> ClusterSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut trace = TraceConfig::physical(seed);
        trace.horizon = SimDuration::from_secs(900);
        ClusterSimConfig::new(main, trace)
    }

    fn physical_config(seed: u64) -> PhysicalSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main);
        cfg.iterations = 60;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn backend_kind_parses_and_prints() {
        assert_eq!(
            "coarse".parse::<BackendKind>().unwrap(),
            BackendKind::Coarse
        );
        assert_eq!(
            "physical".parse::<BackendKind>().unwrap(),
            BackendKind::Physical
        );
        assert_eq!("fault".parse::<BackendKind>().unwrap(), BackendKind::Fault);
        assert_eq!("fleet".parse::<BackendKind>().unwrap(), BackendKind::Fleet);
        assert!("warp-speed".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::Coarse.to_string(), "coarse");
        assert_eq!(BackendKind::Fault.to_string(), "fault");
        assert_eq!(BackendKind::Fleet.to_string(), "fleet");
        assert_eq!(BackendKind::ALL.len(), 4);
    }

    #[test]
    fn enum_selection_runs_both_fidelities() {
        let coarse = BackendConfig::Coarse(coarse_config(3)).run();
        assert_eq!(coarse.metrics.kind, BackendKind::Coarse);
        assert!(coarse.metrics.recovered_tflops_per_gpu > 0.0);
        assert!(coarse.metrics.events_dispatched > 0);
        assert!(coarse.as_coarse().is_some());
        assert!(coarse.as_physical().is_none());
        assert!(matches!(coarse.detail(), BackendDetail::Coarse(_)));
        assert_eq!(coarse.metrics(), &coarse.metrics);
        assert!(coarse.physical().is_none());

        let phys = BackendConfig::Physical(physical_config(3)).run();
        assert_eq!(phys.metrics.kind, BackendKind::Physical);
        assert!(phys.metrics.recovered_tflops_per_gpu > 0.0);
        assert!(phys.metrics.main_slowdown >= 0.0);
        assert!(phys.metrics.events_dispatched > 0);
        assert!(phys.physical().is_some());

        let mut fault_cfg =
            crate::fault::FaultSimConfig::new(MainJobSpec::physical_5b(8, ScheduleKind::GPipe));
        fault_cfg.iterations = 40;
        fault_cfg.seed = 3;
        let fault = BackendConfig::Fault(fault_cfg).run();
        assert_eq!(fault.metrics.kind, BackendKind::Fault);
        assert!(fault.metrics.recovered_tflops_per_gpu > 0.0);
        assert_eq!(fault.metrics.evictions, 0); // faults disabled by default
        assert_eq!(fault.metrics.goodput_fraction, 1.0);
        assert!(fault.fault().is_some());
    }

    #[test]
    fn goodput_helper_handles_edge_cases() {
        assert_eq!(BackendMetrics::goodput_of(0.0, 0.0), 1.0);
        assert_eq!(BackendMetrics::goodput_of(3.0, 1.0), 0.75);
        assert_eq!(BackendMetrics::goodput_of(0.0, 5.0), 0.0);
    }

    #[test]
    fn driver_single_steps() {
        let mut driver = BackendDriver::new(CoarseBackend::new(coarse_config(4)));
        let mut steps = 0u64;
        while driver.step() == StepOutcome::Dispatched {
            steps += 1;
        }
        assert!(steps > 0);
        assert!(driver.now() > SimTime::ZERO);
    }

    #[test]
    fn metrics_agree_with_detailed_results() {
        let run = BackendConfig::Coarse(coarse_config(5)).run();
        let metrics = run.metrics;
        let detail = run.coarse().unwrap();
        assert_eq!(metrics.jobs_completed, detail.completed.len());
        assert_eq!(
            metrics.recovered_tflops_per_gpu,
            detail.recovered_tflops_per_gpu
        );
        assert_eq!(metrics.num_devices, detail.num_devices);

        let run = BackendConfig::Physical(physical_config(5)).run();
        let metrics = run.metrics;
        let detail = run.physical().unwrap();
        assert_eq!(metrics.jobs_completed, detail.jobs_completed);
        assert_eq!(metrics.main_slowdown, detail.main_slowdown);
        assert_eq!(metrics.fill_flops, detail.fill_flops);
    }
}
