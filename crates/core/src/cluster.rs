//! The coarse, profile-driven cluster simulator.
//!
//! Mirrors the paper's event-driven simulator (§5.1): "the events in our
//! simulator are the arrivals and completions of fill-jobs (since these
//! are when the state of the system can change), and we simulate the time
//! in between these events using the profiled execution times and the job
//! arrivals from the trace."
//!
//! One device is simulated per pipeline stage by default (every GPU of a
//! tensor-parallel group sees identical bubbles, and data-parallel
//! replicas are statistically identical — the paper likewise runs a
//! single replica, §5.2).
//!
//! The simulator is implemented as [`CoarseBackend`], a
//! [`SimBackend`](crate::SimBackend) over the shared
//! [`ClusterEvent`](crate::ClusterEvent) alphabet: it owns no time loop and
//! is driven entirely by the `sim-core` kernel. [`ClusterSim`] remains the
//! convenience entry point wrapping the backend in a driver.

use std::collections::HashMap;

use pipefill_executor::{plan_best, ExecutionPlan, ExecutorConfig, FillJobSpec, JobId};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::MainJobSpec;
use pipefill_scheduler::{
    EarliestDeadlineFirst, ExecutorSnapshot, Fifo, FillJobScheduler, JobInfo, MakespanMin,
    SchedulingPolicy, ShortestJobFirst, SystemState, Weighted,
};
use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use pipefill_trace::{TraceConfig, TraceGenerator};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendDriver, BackendKind, BackendMetrics, ClusterEvent, SimBackend};
use crate::convert::trace_job_to_spec;
use crate::metrics::JctStats;

/// Which built-in policy the simulation uses (a serializable stand-in for
/// the boxed policy trait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-in-first-out.
    Fifo,
    /// Shortest-Job-First (paper example).
    Sjf,
    /// Makespan-minimizing (paper example).
    MakespanMin,
    /// Deadline-aware hierarchy falling back to SJF.
    DeadlineThenSjf,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::Sjf => Box::new(ShortestJobFirst),
            PolicyKind::MakespanMin => Box::new(MakespanMin),
            PolicyKind::DeadlineThenSjf => Box::new(Weighted::new(vec![
                (1e6, Box::new(EarliestDeadlineFirst)),
                (1.0, Box::new(ShortestJobFirst)),
            ])),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Fifo => write!(f, "FIFO"),
            PolicyKind::Sjf => write!(f, "SJF"),
            PolicyKind::MakespanMin => write!(f, "Makespan-Min"),
            PolicyKind::DeadlineThenSjf => write!(f, "EDF+SJF"),
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(PolicyKind::Fifo),
            "sjf" => Ok(PolicyKind::Sjf),
            "makespan" | "makespan-min" => Ok(PolicyKind::MakespanMin),
            "edf" | "edf-sjf" => Ok(PolicyKind::DeadlineThenSjf),
            other => Err(format!(
                "unknown policy '{other}' (fifo|sjf|makespan-min|edf)"
            )),
        }
    }
}

/// Cluster-simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// The main training job whose bubbles are filled.
    pub main_job: MainJobSpec,
    /// Fill-job workload.
    pub trace: TraceConfig,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Executor tuning.
    pub executor: ExecutorConfig,
    /// Simulated devices per pipeline stage (1 is representative; raise
    /// it to study queueing effects across a tensor-parallel group).
    pub devices_per_stage: usize,
}

impl ClusterSimConfig {
    /// Defaults: SJF, paper executor constants, one device per stage.
    pub fn new(main_job: MainJobSpec, trace: TraceConfig) -> Self {
        ClusterSimConfig {
            main_job,
            trace,
            policy: PolicyKind::Sjf,
            executor: ExecutorConfig::default(),
            devices_per_stage: 1,
        }
    }
}

/// One finished fill job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedJob {
    /// Job id.
    pub id: JobId,
    /// Model run.
    pub model: ModelId,
    /// Training or inference.
    pub kind: JobKind,
    /// Arrival time.
    pub arrival: SimTime,
    /// Dispatch time.
    pub started: SimTime,
    /// Completion time.
    pub completed: SimTime,
    /// Device it ran on.
    pub device: usize,
    /// Samples processed.
    pub samples: u64,
    /// FLOPs executed.
    pub flops: f64,
    /// The job's deadline, if it had one.
    pub deadline: Option<SimTime>,
}

impl CompletedJob {
    /// Whether the job finished by its deadline (`None` if it had none).
    pub fn met_deadline(&self) -> Option<bool> {
        self.deadline.map(|d| self.completed <= d)
    }
}

/// Simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSimResult {
    /// Devices simulated.
    pub num_devices: usize,
    /// Trace horizon.
    pub horizon: SimDuration,
    /// Finished jobs.
    pub completed: Vec<CompletedJob>,
    /// Jobs infeasible on every device.
    pub rejected: usize,
    /// Fill FLOPs executed within the horizon (running jobs prorated).
    pub fill_flops_in_horizon: f64,
    /// Fill TFLOPS per GPU over the horizon.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU.
    pub main_tflops_per_gpu: f64,
    /// Engine bubble ratio.
    pub bubble_ratio: f64,
    /// Completion-time statistics.
    pub jct: JctStats,
    /// Time of the last completion (the makespan, Fig. 9b's metric).
    pub makespan: SimDuration,
    /// Jobs with deadlines that finished in time.
    pub deadlines_met: usize,
    /// Jobs with deadlines that finished late.
    pub deadlines_missed: usize,
}

impl ClusterSimResult {
    /// Aggregate TFLOPS per GPU (main + fill).
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

struct Running {
    job: FillJobSpec,
    started: SimTime,
    completes: SimTime,
    flops: f64,
}

struct Device {
    stage: usize,
    busy_until: SimTime,
    running: Option<Running>,
}

/// The coarse profile-driven backend: a [`SimBackend`] whose events are
/// fill-job arrivals and completions, exactly as in the paper's simulator.
/// All time keeping lives in the `sim-core` kernel that drives it.
pub struct CoarseBackend {
    config: ClusterSimConfig,
    period: SimDuration,
    bubble_ratio: f64,
    main_tflops: f64,
    /// Fillable bubble slots per stage.
    stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>>,
    plan_cache: HashMap<(ModelId, JobKind, usize), Option<ExecutionPlan>>,
    scheduler: FillJobScheduler,
    devices: Vec<Device>,
    specs: HashMap<JobId, FillJobSpec>,
    arrivals: Vec<FillJobSpec>,
    completed: Vec<CompletedJob>,
    rejected: usize,
    result: Option<ClusterSimResult>,
}

impl CoarseBackend {
    /// Builds the backend: runs the engine once to extract bubbles, then
    /// generates and converts the fill-job trace.
    pub fn new(config: ClusterSimConfig) -> Self {
        let timeline = config.main_job.engine_timeline();
        let stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>> = timeline
            .stages
            .iter()
            .map(|s| {
                s.fillable_windows()
                    .iter()
                    .map(|w| (w.duration, w.free_memory))
                    .collect()
            })
            .collect();
        let main_tflops = config.main_job.main_job_tflops_per_gpu(&timeline);
        let p = stage_slots.len();
        let num_devices = p * config.devices_per_stage;

        let (trace_jobs, _) = TraceGenerator::new(config.trace.clone()).generate();
        let arrivals: Vec<FillJobSpec> = trace_jobs
            .iter()
            .filter_map(|t| trace_job_to_spec(t, &config.main_job.device))
            .collect();

        let devices: Vec<Device> = (0..num_devices)
            .map(|d| Device {
                stage: d % p,
                busy_until: SimTime::ZERO,
                running: None,
            })
            .collect();

        let scheduler = FillJobScheduler::new(config.policy.build());
        CoarseBackend {
            period: timeline.period,
            bubble_ratio: timeline.bubble_ratio(),
            main_tflops,
            stage_slots,
            plan_cache: HashMap::new(),
            scheduler,
            devices,
            specs: HashMap::new(),
            arrivals,
            completed: Vec::new(),
            rejected: 0,
            result: None,
            config,
        }
    }

    fn plan(&mut self, model: ModelId, kind: JobKind, stage: usize) -> Option<&ExecutionPlan> {
        let key = (model, kind, stage);
        if !self.plan_cache.contains_key(&key) {
            let slots = &self.stage_slots[stage];
            let plan = if slots.is_empty() {
                None
            } else {
                // Plans depend only on (model, kind, bubbles), not on the
                // job's sample count.
                let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
                plan_best(
                    &probe,
                    slots,
                    &self.config.main_job.device,
                    &self.config.executor,
                )
                .ok()
            };
            self.plan_cache.insert(key, plan);
        }
        self.plan_cache.get(&key).expect("inserted above").as_ref()
    }

    fn proc_time(&mut self, job: &FillJobSpec, stage: usize) -> Option<SimDuration> {
        let period = self.period;
        let plan = self.plan(job.model, job.kind, stage)?;
        let iters = plan.main_iterations_for(job.samples);
        Some(period * iters)
    }

    fn job_flops(&mut self, job: &FillJobSpec, stage: usize) -> f64 {
        match self.plan(job.model, job.kind, stage) {
            None => 0.0,
            Some(p) => p.flops_per_pass * (job.samples as f64 / p.samples_per_pass.max(1) as f64),
        }
    }

    /// The detailed result. Only valid after the driver has run.
    ///
    /// # Panics
    ///
    /// Panics if the backend has not been drained yet.
    pub fn into_result(self) -> ClusterSimResult {
        self.result
            .expect("backend not drained; drive it with BackendDriver::run")
    }

    fn snapshot(&self, now: SimTime) -> SystemState {
        SystemState {
            now,
            executors: self
                .devices
                .iter()
                .map(|d| ExecutorSnapshot {
                    remaining: d.busy_until.saturating_since(now),
                })
                .collect(),
        }
    }

    fn dispatch_idle(&mut self, now: SimTime, queue: &mut EventQueue<ClusterEvent>) {
        let idle: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.busy_until <= now)
            .map(|(i, _)| i)
            .collect();
        for device in idle {
            let state = self.snapshot(now);
            let Some(info) = self.scheduler.pick_for(device, &state) else {
                continue;
            };
            let spec = self
                .specs
                .remove(&info.id)
                .expect("spec recorded at arrival");
            let stage = self.devices[device].stage;
            let proc = info.proc_times[device].expect("picked job is feasible here");
            let flops = self.job_flops(&spec, stage);
            let completes = now + proc;
            self.devices[device].busy_until = completes;
            self.devices[device].running = Some(Running {
                job: spec,
                started: now,
                completes,
                flops,
            });
            queue.push(completes, ClusterEvent::JobCompletion { device });
        }
    }
}

impl EventHandler for CoarseBackend {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        match event {
            ClusterEvent::JobArrival(i) => {
                let spec = self.arrivals[i].clone();
                let proc_times: Vec<Option<SimDuration>> = (0..self.devices.len())
                    .map(|d| {
                        let stage = self.devices[d].stage;
                        self.proc_time(&spec, stage)
                    })
                    .collect();
                if proc_times.iter().all(|t| t.is_none()) {
                    self.rejected += 1;
                    return;
                }
                let mut info = JobInfo::new(spec.id, spec.arrival, proc_times);
                if let Some(d) = spec.deadline {
                    info = info.with_deadline(d);
                }
                self.specs.insert(spec.id, spec);
                self.scheduler.submit(info);
                self.dispatch_idle(now, queue);
            }
            ClusterEvent::JobCompletion { device } => {
                let running = self.devices[device]
                    .running
                    .take()
                    .expect("completion without running job");
                debug_assert_eq!(running.completes, now);
                self.completed.push(CompletedJob {
                    id: running.job.id,
                    model: running.job.model,
                    kind: running.job.kind,
                    arrival: running.job.arrival,
                    started: running.started,
                    completed: now,
                    device,
                    samples: running.job.samples,
                    flops: running.flops,
                    deadline: running.job.deadline,
                });
                self.dispatch_idle(now, queue);
            }
            ClusterEvent::StageBubbles { .. }
            | ClusterEvent::IterationEnd
            | ClusterEvent::JobIterationEnd { .. }
            | ClusterEvent::DeviceFailure { .. }
            | ClusterEvent::DeviceRecovery { .. } => {
                debug_assert!(false, "coarse backend received a fine-grained event");
            }
        }
    }
}

impl SimBackend for CoarseBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Coarse
    }

    fn prime(&mut self, sim: &mut Simulation<ClusterEvent>) {
        for (i, job) in self.arrivals.iter().enumerate() {
            sim.schedule(job.arrival, ClusterEvent::JobArrival(i));
        }
    }

    fn drain(&mut self, _now: SimTime) {
        // Utilization accounting within the horizon.
        let horizon = self.config.trace.horizon;
        let num_devices = self.devices.len();
        let horizon_secs = horizon.as_secs_f64();
        let mut flops_in_horizon = 0.0;
        let mut jcts = Vec::with_capacity(self.completed.len());
        let mut makespan = SimDuration::ZERO;
        let mut deadlines_met = 0usize;
        let mut deadlines_missed = 0usize;
        for job in &self.completed {
            match job.met_deadline() {
                Some(true) => deadlines_met += 1,
                Some(false) => deadlines_missed += 1,
                None => {}
            }
            jcts.push(job.completed.saturating_since(job.arrival).as_secs_f64());
            makespan = makespan.max(job.completed.saturating_since(SimTime::ZERO));
            let start = job.started.as_secs_f64();
            let end = job.completed.as_secs_f64();
            if start >= horizon_secs {
                continue;
            }
            let fraction = if end <= horizon_secs {
                1.0
            } else {
                (horizon_secs - start) / (end - start)
            };
            flops_in_horizon += job.flops * fraction;
        }

        self.result = Some(ClusterSimResult {
            num_devices,
            horizon,
            rejected: self.rejected,
            fill_flops_in_horizon: flops_in_horizon,
            recovered_tflops_per_gpu: flops_in_horizon / (num_devices as f64 * horizon_secs) / 1e12,
            main_tflops_per_gpu: self.main_tflops,
            bubble_ratio: self.bubble_ratio,
            jct: JctStats::from_secs(&jcts),
            makespan,
            deadlines_met,
            deadlines_missed,
            completed: std::mem::take(&mut self.completed),
        });
    }

    fn metrics(&self, events_dispatched: u64) -> BackendMetrics {
        let result = self
            .result
            .as_ref()
            .expect("metrics requested before drain");
        BackendMetrics {
            kind: BackendKind::Coarse,
            num_devices: result.num_devices,
            elapsed: result.horizon,
            events_dispatched,
            fill_flops: result.fill_flops_in_horizon,
            recovered_tflops_per_gpu: result.recovered_tflops_per_gpu,
            main_tflops_per_gpu: result.main_tflops_per_gpu,
            // The coarse fidelity replays profiled plans capped at the fill
            // fraction, so it models no main-job interference.
            main_slowdown: 0.0,
            bubble_ratio: result.bubble_ratio,
            jobs_completed: result.completed.len(),
            // The coarse fidelity injects no failures.
            evictions: 0,
            lost_fill_flops: 0.0,
            goodput_fraction: 1.0,
        }
    }
}

/// The coarse cluster simulator: the convenience entry point wrapping
/// [`CoarseBackend`] in a [`BackendDriver`]. See the module docs.
pub struct ClusterSim {
    config: ClusterSimConfig,
}

impl ClusterSim {
    /// Creates the simulator.
    pub fn new(config: ClusterSimConfig) -> Self {
        ClusterSim { config }
    }

    /// Runs the simulation to completion (all trace jobs finished) on the
    /// shared event kernel.
    pub fn run(&mut self) -> ClusterSimResult {
        let (_, backend) = BackendDriver::new(CoarseBackend::new(self.config.clone())).run();
        backend.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;
    use pipefill_sim_core::SimDuration;

    fn quick_config(seed: u64) -> ClusterSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut trace = TraceConfig::physical(seed);
        trace.horizon = SimDuration::from_secs(1800);
        ClusterSimConfig::new(main, trace)
    }

    #[test]
    fn simulation_completes_all_accepted_jobs() {
        let mut sim = ClusterSim::new(quick_config(1));
        let result = sim.run();
        assert!(
            result.completed.len() > 10,
            "only {}",
            result.completed.len()
        );
        assert_eq!(result.num_devices, 16);
        for job in &result.completed {
            assert!(job.started >= job.arrival);
            assert!(job.completed > job.started);
            assert!(job.flops > 0.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = ClusterSim::new(quick_config(2)).run();
        let b = ClusterSim::new(quick_config(2)).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.recovered_tflops_per_gpu, b.recovered_tflops_per_gpu);
    }

    #[test]
    fn recovered_utilization_is_positive_and_bounded() {
        let result = ClusterSim::new(quick_config(3)).run();
        assert!(result.recovered_tflops_per_gpu > 0.0);
        // Cannot exceed peak × bubble ratio.
        assert!(
            result.recovered_tflops_per_gpu < 125.0 * result.bubble_ratio,
            "{}",
            result.recovered_tflops_per_gpu
        );
        assert!(result.total_tflops_per_gpu() > result.main_tflops_per_gpu);
    }

    #[test]
    fn higher_load_increases_makespan_and_jct() {
        let lo = ClusterSim::new(ClusterSimConfig {
            trace: TraceConfig::physical(4).with_load(0.3).clone(),
            ..quick_config(4)
        })
        .run();
        let hi = ClusterSim::new(ClusterSimConfig {
            trace: TraceConfig::physical(4).with_load(3.0).clone(),
            ..quick_config(4)
        })
        .run();
        assert!(hi.completed.len() > lo.completed.len());
        assert!(hi.jct.mean_secs > lo.jct.mean_secs);
    }

    #[test]
    fn deadline_policy_meets_more_deadlines_under_load() {
        let mk = |policy| {
            let mut cfg = quick_config(6);
            cfg.trace = cfg.trace.with_load(3.0);
            cfg.trace.deadline_fraction = 0.6;
            cfg.trace.deadline_slack = 5.0;
            cfg.policy = policy;
            ClusterSim::new(cfg).run()
        };
        let edf = mk(PolicyKind::DeadlineThenSjf);
        let fifo = mk(PolicyKind::Fifo);
        assert!(
            edf.deadlines_met + edf.deadlines_missed > 10,
            "too few deadline jobs"
        );
        assert!(
            edf.deadlines_met >= fifo.deadlines_met,
            "EDF met {} vs FIFO {}",
            edf.deadlines_met,
            fifo.deadlines_met
        );
    }

    #[test]
    fn sjf_beats_fifo_on_mean_jct() {
        let mk = |policy| {
            let mut cfg = quick_config(5);
            cfg.trace = cfg.trace.with_load(1.5);
            cfg.policy = policy;
            ClusterSim::new(cfg).run()
        };
        let sjf = mk(PolicyKind::Sjf);
        let fifo = mk(PolicyKind::Fifo);
        assert!(
            sjf.jct.mean_secs <= fifo.jct.mean_secs,
            "SJF {} vs FIFO {}",
            sjf.jct.mean_secs,
            fifo.jct.mean_secs
        );
    }
}
