//! Converting trace jobs into executable fill-job specs.
//!
//! §5.3: "To determine how many samples a job should process, we divide
//! the job-size (in GPU-hours) by the max throughput that the job-type
//! can achieve when executed in isolation on one GPU."

use pipefill_device::DeviceSpec;
use pipefill_executor::FillJobSpec;
use pipefill_model_zoo::JobKind;
use pipefill_trace::TraceJob;

/// Samples a trace job must process: GPU-hours ÷ isolated max throughput.
///
/// Returns at least 1 sample. `None` if the model has no feasible
/// exclusive configuration on this device (does not happen for the
/// Table-1 zoo on a V100).
pub fn samples_for_trace_job(job: &TraceJob, device: &DeviceSpec) -> Option<u64> {
    let model = job.model.build();
    let batches = FillJobSpec::default_batch_sizes();
    let (throughput, _) =
        pipefill_executor::exclusive_throughput(&model, job.kind, device, &batches)?;
    let samples = (job.gpu_hours * 3600.0 * throughput).round() as u64;
    Some(samples.max(1))
}

/// Full conversion into the Executor's job description.
pub fn trace_job_to_spec(job: &TraceJob, device: &DeviceSpec) -> Option<FillJobSpec> {
    let samples = samples_for_trace_job(job, device)?;
    let mut spec = FillJobSpec::new(job.id, job.model, job.kind, samples).with_arrival(job.arrival);
    if let Some(d) = job.deadline {
        spec = spec.with_deadline(d);
    }
    Some(spec)
}

/// Convenience: is this job kind/model pair even allowed by the §5.3
/// bucketing rule?
pub fn kind_allowed(job: &TraceJob) -> bool {
    job.kind == JobKind::BatchInference || job.model.trainable_as_fill_job()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_model_zoo::ModelId;
    use pipefill_sim_core::SimTime;
    use pipefill_trace::{TraceConfig, TraceGenerator};

    fn trace_job(model: ModelId, kind: JobKind, gpu_hours: f64) -> TraceJob {
        TraceJob {
            id: 1,
            arrival: SimTime::ZERO,
            model,
            kind,
            gpu_hours,
            deadline: None,
        }
    }

    #[test]
    fn samples_scale_with_gpu_hours() {
        let d = DeviceSpec::v100();
        let small = trace_job(ModelId::BertBase, JobKind::BatchInference, 0.1);
        let big = trace_job(ModelId::BertBase, JobKind::BatchInference, 1.0);
        let s1 = samples_for_trace_job(&small, &d).unwrap();
        let s2 = samples_for_trace_job(&big, &d).unwrap();
        let ratio = s2 as f64 / s1 as f64;
        assert!((ratio - 10.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn bert_inference_sample_count_is_plausible() {
        // BERT-base batch inference on a V100 runs hundreds of samples
        // per second; a 0.5 GPU-hour job should be ~10^5-10^6 samples.
        let d = DeviceSpec::v100();
        let job = trace_job(ModelId::BertBase, JobKind::BatchInference, 0.5);
        let s = samples_for_trace_job(&job, &d).unwrap();
        assert!((50_000..5_000_000).contains(&s), "samples {s}");
    }

    #[test]
    fn training_jobs_get_fewer_samples_than_inference() {
        let d = DeviceSpec::v100();
        let t = trace_job(ModelId::BertBase, JobKind::Training, 0.5);
        let i = trace_job(ModelId::BertBase, JobKind::BatchInference, 0.5);
        assert!(samples_for_trace_job(&t, &d).unwrap() < samples_for_trace_job(&i, &d).unwrap());
    }

    #[test]
    fn whole_trace_converts() {
        let d = DeviceSpec::v100();
        let (jobs, _) = TraceGenerator::new(TraceConfig::physical(2)).generate();
        assert!(!jobs.is_empty());
        for j in &jobs {
            assert!(kind_allowed(j), "{j:?}");
            let spec = trace_job_to_spec(j, &d).expect("every Table-1 job converts");
            assert!(spec.samples >= 1);
            assert_eq!(spec.arrival, j.arrival);
            assert_eq!(spec.deadline, j.deadline);
        }
    }
}
