//! The fleet-scale multi-job cluster simulator.
//!
//! Every other backend in this crate simulates exactly one
//! pipeline-parallel main job with a private fill queue; the paper's
//! headline projections (Figs. 9/10, §6.2) are about *fleets* — thousands
//! of GPUs running many jobs at once, with bubble-filling operated as a
//! cluster-level service (the framing FreeRide makes explicit).
//! [`FleetBackend`] is that fleet: N concurrent main jobs —
//! heterogeneous pipeline depths, iteration periods, and device
//! generations per job — on one shared event kernel, sharing one
//! cluster-wide [`GlobalFillQueue`](pipefill_scheduler::GlobalFillQueue).
//!
//! * **Per-job mechanics are the physical model's.** Each main job
//!   unfolds exactly like a [`PhysicalBackend`](crate::PhysicalBackend)
//!   run: per-stage `StageBubbles` events on a *flat* device index space,
//!   per-bubble fill execution with jitter and switch costs, and a
//!   [`ClusterEvent::JobIterationEnd`] per job that folds that job's
//!   stalls into its own critical path. Each job owns its workload RNG
//!   stream, so a job's realized workload is independent of which other
//!   jobs share the fleet — and a **1-job homogeneous fleet reproduces
//!   the physical backend bit for bit**, which the conformance suite
//!   pins.
//! * **The fill layer is cluster-wide.** Device failures (optional,
//!   seeded per flat device) evict the running fill job; the work since
//!   its last checkpoint is lost and the job re-enters the *global*
//!   queue with its original arrival. Locality-aware dispatch: an
//!   evicted fill job's execution plan is bound to a bubble geometry, so
//!   it is feasible exactly on stages with matching geometry — its own
//!   pipeline's stage, or the same stage of any *identically shaped* job
//!   that admits foreign work (per-job admission). Cross-job resumes are
//!   counted, making "how much does a global queue buy over per-job
//!   queues" a measurable quantity.
//!
//! Construction profiles each distinct job *shape* once (jobs with
//! identical main-job spec and executor tuning share bubble geometry and
//! plan caches) and fans the profiling across cores through the sweep
//! driver — results are byte-stable at any thread count because geometry
//! is a pure function of the spec and all simulation randomness flows
//! through per-job seeded streams.

use std::collections::HashMap;
use std::sync::Arc;

use pipefill_device::DeviceSpec;
use pipefill_executor::{
    exclusive_throughput, plan_best, ExecutionPlan, ExecutorCheckpoint, ExecutorConfig,
    FillJobExecutor, FillJobSpec, JobId,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::{BubbleWindow, MainJobSpec, ParallelismConfig, ScheduleKind};
use pipefill_scheduler::{GlobalFillQueue, JobInfo, SystemState};
use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use pipefill_trace::{DeviceGeneration, FleetJobPlan, FleetWorkloadConfig, ModelMix};
use serde::{Deserialize, Serialize};

use crate::backend::{BackendDriver, BackendKind, BackendMetrics, ClusterEvent, SimBackend};
use crate::cluster::PolicyKind;
use crate::experiments::sweep;
use crate::ff::{SteadyCounters, SteadyDetector};
use crate::physical::{
    critical_path_delay, sig_executor, sig_rotation, MixRotation, PhysicalSimConfig,
};

/// Per-job signature history cap. Smaller than the single-job backends'
/// [`STEADY_HISTORY`](crate::physical::STEADY_HISTORY): a fleet carries
/// one detector per main job, and observed steady cycles are short (a few
/// iterations), so a modest window keeps thousand-job fleets cheap while
/// still detecting every cycle the other backends do.
const FLEET_STEADY_HISTORY: usize = 64;

/// One main job of the fleet.
#[derive(Debug, Clone)]
pub struct FleetJobConfig {
    /// The pipeline-parallel training job (its device is the GPU every
    /// stage of this job runs on).
    pub main_job: MainJobSpec,
    /// Executor tuning; `fill_fraction == 0.0` means this job declines
    /// filling entirely.
    pub executor: ExecutorConfig,
    /// Main-job iterations to simulate.
    pub iterations: usize,
    /// Workload RNG seed for this job's fill backlog.
    pub seed: u64,
    /// Whether this job's stages accept fill work evicted from other
    /// jobs (per-job admission at the global queue).
    pub admits_foreign: bool,
}

impl FleetJobConfig {
    /// Defaults matching the physical backend's: the paper's 68% fill
    /// fraction and 200 iterations.
    pub fn new(main_job: MainJobSpec) -> Self {
        FleetJobConfig {
            main_job,
            executor: ExecutorConfig::default(),
            iterations: 200,
            seed: 7,
            admits_foreign: true,
        }
    }

    /// Lowers a trace-crate fleet plan onto a concrete main-job spec.
    pub fn from_plan(plan: &FleetJobPlan, schedule: ScheduleKind) -> Self {
        let mut main_job = MainJobSpec::physical_5b(plan.microbatches, schedule);
        main_job.parallelism = ParallelismConfig::new(
            plan.tensor_parallel,
            plan.pipeline_stages,
            plan.data_parallel,
            2,
            2 * plan.microbatches * plan.data_parallel,
        );
        main_job.device = match plan.device_generation {
            DeviceGeneration::V100 => DeviceSpec::v100(),
            DeviceGeneration::A100 => DeviceSpec::a100_40g(),
            DeviceGeneration::H100 => DeviceSpec::h100(),
        };
        let mut executor = ExecutorConfig::default();
        if plan.fill_fraction == 0.0 {
            executor.fill_fraction = 0.0;
        } else {
            executor = executor.with_fill_fraction(plan.fill_fraction);
        }
        FleetJobConfig {
            main_job,
            executor,
            iterations: plan.iterations,
            seed: plan.seed,
            admits_foreign: plan.admits_foreign,
        }
    }
}

/// Fleet-simulation parameters. Workload knobs shared with the physical
/// backend keep its defaults so the degenerate single-job fleet stays an
/// exact physical run.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// The concurrent main jobs.
    pub jobs: Vec<FleetJobConfig>,
    /// Policy of the cluster-wide fill queue.
    pub policy: PolicyKind,
    /// Fill-job model mix (every job draws from an infinite backlog).
    pub mix: ModelMix,
    /// Coefficient of variation of the multiplicative timing jitter.
    pub jitter_cv: f64,
    /// Fraction of each (jittered) bubble actually usable for filling.
    pub usable_fraction: f64,
    /// Size of each backlog job in GPU-hours.
    pub backlog_job_gpu_hours: f64,
    /// Draw backlog jobs by weighted round-robin instead of random
    /// sampling (exact mix realization).
    pub deterministic_mix: bool,
    /// Fleet-level seed; failure streams fork from it per flat device,
    /// independent of every job's workload stream.
    pub seed: u64,
    /// Per-device mean time between failures; [`SimDuration::MAX`]
    /// disables fault injection (and with it all global-queue traffic).
    pub mtbf: SimDuration,
    /// Mean outage length once a device fails.
    pub mean_recovery: SimDuration,
    /// Bubble time an evicted fill job burns reloading its checkpoint
    /// before it resumes making progress.
    pub checkpoint_cost: SimDuration,
    /// A fill job checkpoints after this many executed bubble partitions.
    pub checkpoint_every_bubbles: usize,
    /// Steady-state fast-forward (see
    /// [`PhysicalSimConfig::fast_forward`]). Per job: each main job owns
    /// a detector over its private iteration stream. Only armed when
    /// fault injection is off (`mtbf == MAX`), the configuration in which
    /// jobs are provably independent and the global queue stays empty.
    pub fast_forward: bool,
    /// Signature matches required before the first fast-forward skip;
    /// `u32::MAX` pins fast-forward off (see
    /// [`PhysicalSimConfig::steady_confirm`]).
    pub steady_confirm: u32,
}

impl FleetSimConfig {
    /// A fleet over the given jobs with physical-backend workload
    /// defaults and faults disabled.
    ///
    /// # Panics
    ///
    /// Panics if `jobs` is empty.
    pub fn new(jobs: Vec<FleetJobConfig>) -> Self {
        assert!(!jobs.is_empty(), "a fleet needs at least one main job");
        FleetSimConfig {
            jobs,
            policy: PolicyKind::Fifo,
            mix: ModelMix::paper_mix(),
            jitter_cv: 0.08,
            usable_fraction: 0.88,
            backlog_job_gpu_hours: 0.02,
            deterministic_mix: false,
            seed: 7,
            mtbf: SimDuration::MAX,
            mean_recovery: SimDuration::from_secs(120),
            checkpoint_cost: SimDuration::from_secs(2),
            checkpoint_every_bubbles: 8,
            fast_forward: true,
            steady_confirm: 1,
        }
    }

    /// The degenerate fleet: one job carrying exactly the given physical
    /// configuration. This fleet reproduces
    /// [`PhysicalBackend`](crate::PhysicalBackend) bit for bit — the
    /// conformance suite's pin.
    ///
    /// # Panics
    ///
    /// Panics if the physical configuration injects memory jitter, which
    /// the fleet backend does not model.
    pub fn from_physical(phys: &PhysicalSimConfig) -> Self {
        assert_eq!(
            phys.memory_jitter_cv, 0.0,
            "the fleet backend does not model memory jitter"
        );
        let job = FleetJobConfig {
            main_job: phys.main_job.clone(),
            executor: phys.executor,
            iterations: phys.iterations,
            seed: phys.seed,
            admits_foreign: true,
        };
        let mut cfg = FleetSimConfig::new(vec![job]);
        cfg.mix = phys.mix.clone();
        cfg.jitter_cv = phys.jitter_cv;
        cfg.usable_fraction = phys.usable_fraction;
        cfg.backlog_job_gpu_hours = phys.backlog_job_gpu_hours;
        cfg.deterministic_mix = phys.deterministic_mix;
        cfg.seed = phys.seed;
        cfg.fast_forward = phys.fast_forward;
        cfg.steady_confirm = phys.steady_confirm;
        cfg
    }

    /// Lowers a generated fleet workload (see
    /// [`FleetWorkloadConfig`]) onto a runnable configuration; every
    /// main job runs GPipe.
    pub fn from_workload(workload: &FleetWorkloadConfig) -> Self {
        Self::from_workload_scheduled(workload, ScheduleKind::GPipe)
    }

    /// Like [`FleetSimConfig::from_workload`], with every main job
    /// running the given pipeline schedule — the fleet-level seam of the
    /// `--schedule` flag.
    pub fn from_workload_scheduled(workload: &FleetWorkloadConfig, schedule: ScheduleKind) -> Self {
        let jobs = workload
            .generate()
            .iter()
            .map(|plan| FleetJobConfig::from_plan(plan, schedule))
            .collect();
        let mut cfg = FleetSimConfig::new(jobs);
        cfg.seed = workload.seed;
        cfg
    }

    /// Sets the mean time between failures per device.
    pub fn with_mtbf(mut self, mtbf: SimDuration) -> Self {
        self.mtbf = mtbf;
        self
    }

    /// Sets the global-queue policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// Per-job output of a fleet run. The accounting mirrors
/// [`PhysicalSimResult`](crate::PhysicalSimResult) field for field so
/// the degenerate single-job fleet can be diffed bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJobResult {
    /// Index within the fleet.
    pub job: usize,
    /// Total GPUs this job occupies (the simulator models one
    /// representative device per pipeline stage).
    pub gpus: usize,
    /// Pipeline depth.
    pub stages: usize,
    /// GPU generation name.
    pub device: String,
    /// Fill fraction this job ran at.
    pub fill_fraction: f64,
    /// Iterations simulated.
    pub iterations: usize,
    /// Undisturbed iteration period.
    pub nominal_period: SimDuration,
    /// Mean iteration period including fill-overrun stalls.
    pub mean_period: SimDuration,
    /// Main-job slowdown caused by filling.
    pub main_slowdown: f64,
    /// Engine bubble ratio.
    pub bubble_ratio: f64,
    /// Simulated span of this job (`iterations × period + stalls`).
    pub elapsed: SimDuration,
    /// Fill FLOPs that survived on this job's stages.
    pub fill_flops: f64,
    /// Fill FLOPs executed on this job's stages but lost to evictions.
    pub lost_fill_flops: f64,
    /// Surviving fill TFLOPS per GPU of this pipeline.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU (slowdown-adjusted).
    pub main_tflops_per_gpu: f64,
    /// Fill jobs completed on this job's stages.
    pub fill_jobs_completed: usize,
    /// Device failures injected into this job's stages.
    pub failures: u64,
    /// Fill jobs evicted from this job's stages.
    pub evictions: u64,
    /// Bubbles that passed while a stage was down.
    pub bubbles_lost: u64,
    /// Total device downtime across this job's stages, clamped to the
    /// run.
    pub downtime: SimDuration,
}

impl FleetJobResult {
    /// Aggregate TFLOPS per GPU of this pipeline.
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

/// Fleet-simulation output: per-job results plus fleet aggregates and
/// global-queue statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSimResult {
    /// One result per main job, in job order.
    pub jobs: Vec<FleetJobResult>,
    /// Total GPU footprint of the fleet.
    pub total_gpus: usize,
    /// Flat devices simulated (one per pipeline stage per job).
    pub num_devices: usize,
    /// Longest per-job simulated span.
    pub elapsed: SimDuration,
    /// Surviving fill FLOPs fleet-wide.
    pub fill_flops: f64,
    /// Fill FLOPs lost to evictions fleet-wide.
    pub lost_fill_flops: f64,
    /// Surviving fill TFLOPS per simulated device, weighted by each
    /// job's device-time.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU, device-weighted across jobs.
    pub main_tflops_per_gpu: f64,
    /// Device-weighted mean main-job slowdown.
    pub mean_slowdown: f64,
    /// Device-weighted mean bubble ratio.
    pub bubble_ratio: f64,
    /// Fill jobs completed fleet-wide.
    pub fill_jobs_completed: usize,
    /// Ids of completed fill jobs in completion order (each appears at
    /// most once, whatever eviction churn it survived).
    pub completed_fill_ids: Vec<JobId>,
    /// Device failures injected fleet-wide.
    pub failures: u64,
    /// Fill-job evictions fleet-wide.
    pub evictions: u64,
    /// Evicted fill jobs resumed on a *different* main job than they
    /// were evicted from — what the global queue buys over per-job
    /// queues.
    pub cross_job_dispatches: u64,
    /// Deepest the global queue ever was.
    pub peak_queue_depth: usize,
    /// Evicted fill jobs still waiting when the run ended.
    pub left_in_queue: usize,
    /// `fill_flops / (fill_flops + lost_fill_flops)`; 1 when nothing ran.
    pub goodput_fraction: f64,
    /// Iterations skipped analytically by steady-state fast-forward,
    /// summed across jobs (always zero while fault injection is on).
    pub iterations_fast_forwarded: u64,
}

impl FleetSimResult {
    /// Aggregate TFLOPS per GPU (main + fill), device-weighted.
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

/// Bubble geometry and steady-state rates of one job *shape*. Jobs with
/// identical main-job spec and executor tuning share one geometry (and
/// one plan cache), so an 8K-GPU fleet profiles each distinct shape
/// once, not once per job.
struct JobGeometry {
    period: SimDuration,
    main_nominal: f64,
    bubble_ratio: f64,
    stage_windows: Vec<Vec<BubbleWindow>>,
    stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>>,
}

impl JobGeometry {
    fn profile(main_job: &MainJobSpec) -> Self {
        let timeline = main_job.engine_timeline();
        let stage_windows: Vec<Vec<BubbleWindow>> = timeline
            .stages
            .iter()
            .map(|s| s.fillable_windows())
            .collect();
        let stage_slots = stage_windows
            .iter()
            .map(|ws| ws.iter().map(|w| (w.duration, w.free_memory)).collect())
            .collect();
        JobGeometry {
            period: timeline.period,
            main_nominal: main_job.main_job_tflops_per_gpu(&timeline),
            bubble_ratio: timeline.bubble_ratio(),
            stage_windows,
            stage_slots,
        }
    }

    fn stages(&self) -> usize {
        self.stage_windows.len()
    }
}

/// A fill job bound to a stage, with the checkpoint state eviction
/// needs (the fleet-side twin of the fault backend's stage job).
struct FillLease {
    exec: FillJobExecutor,
    ckpt: ExecutorCheckpoint,
    /// FLOPs executed since `ckpt` — lost if the device fails now.
    unsaved_flops: f64,
    /// Bubble partitions executed since `ckpt`.
    runs_since_ckpt: usize,
    /// Bubble time still owed to checkpoint reloading after a revival.
    restart_debt: SimDuration,
}

impl FillLease {
    fn fresh(exec: FillJobExecutor) -> Self {
        let ckpt = exec.checkpoint();
        FillLease {
            exec,
            ckpt,
            unsaved_flops: 0.0,
            runs_since_ckpt: 0,
            restart_debt: SimDuration::ZERO,
        }
    }
}

/// Mutable per-job simulation state.
struct JobState {
    rng: DeterministicRng,
    rotation: Option<MixRotation>,
    /// Running fill lease per local stage.
    running: Vec<Option<FillLease>>,
    up: Vec<bool>,
    next_fill_id: u64,
    iterations_done: usize,
    stage_delays: Vec<SimDuration>,
    total_delay: SimDuration,
    downtime: SimDuration,
    /// All fill FLOPs executed on this job's stages, surviving or not.
    executed_flops: f64,
    lost_flops: f64,
    fills_completed: usize,
    failures: u64,
    evictions: u64,
    bubbles_lost: u64,
    /// Steady-state detector over this job's private iteration stream.
    detector: SteadyDetector,
    fast_forwarded: u64,
}

/// Per-class profiled-plan cache: model × kind × stage count to the
/// shared plan (`None` caches "does not fit").
type PlanCache = HashMap<(ModelId, JobKind, usize), Option<Arc<ExecutionPlan>>>;

/// The fleet backend: many physical-model pipelines on one kernel, one
/// global fill queue. See the module docs for the model.
pub struct FleetBackend {
    cfg: FleetSimConfig,
    /// Shape class per job; geometry/caches are indexed by class.
    class_of: Vec<usize>,
    geometry: Vec<JobGeometry>,
    plan_cache: Vec<PlanCache>,
    tput_cache: Vec<HashMap<(ModelId, JobKind), Option<f64>>>,
    /// First flat device of each job.
    base: Vec<usize>,
    /// Owning job per flat device.
    flat_owner: Vec<usize>,
    queue: GlobalFillQueue,
    /// Reusable all-idle occupancy snapshot for queue picks (occupancy
    /// is not tracked at this fidelity; only the clock changes).
    idle_state: SystemState,
    /// Evicted fill leases waiting in the global queue.
    parked: HashMap<JobId, FillLease>,
    /// Per-flat-device failure processes, independent of workloads.
    fail_rngs: Vec<DeterministicRng>,
    down_until: Vec<SimTime>,
    jobs_state: Vec<JobState>,
    completed_ids: Vec<JobId>,
    result: Option<FleetSimResult>,
}

impl FleetBackend {
    /// Builds the backend: assigns shape classes, profiles each class
    /// once (fanned across cores through the sweep driver), and lays the
    /// jobs out on a flat device index space.
    pub fn new(cfg: FleetSimConfig) -> Self {
        assert!(!cfg.jobs.is_empty(), "a fleet needs at least one main job");

        // Shape classes: identical (main job, executor tuning) pairs
        // share geometry and plan caches.
        let mut class_of: Vec<usize> = Vec::with_capacity(cfg.jobs.len());
        let mut class_reps: Vec<usize> = Vec::new();
        for (j, job) in cfg.jobs.iter().enumerate() {
            let class = class_reps
                .iter()
                .position(|&r| {
                    cfg.jobs[r].main_job == job.main_job && cfg.jobs[r].executor == job.executor
                })
                .unwrap_or_else(|| {
                    class_reps.push(j);
                    class_reps.len() - 1
                });
            class_of.push(class);
        }
        let geometry: Vec<JobGeometry> = sweep::par_map(class_reps, |rep| {
            JobGeometry::profile(&cfg.jobs[rep].main_job)
        });

        let mut base = Vec::with_capacity(cfg.jobs.len());
        let mut flat_owner = Vec::new();
        for (j, &class) in class_of.iter().enumerate() {
            base.push(flat_owner.len());
            flat_owner.extend(std::iter::repeat_n(j, geometry[class].stages()));
        }

        let mut fail_root = DeterministicRng::seed_from(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let fail_rngs: Vec<DeterministicRng> =
            (0..flat_owner.len()).map(|_| fail_root.fork()).collect();

        let queue = GlobalFillQueue::new(
            cfg.policy.build(),
            flat_owner.clone(),
            cfg.jobs.iter().map(|job| job.admits_foreign).collect(),
        );

        let jobs_state: Vec<JobState> = cfg
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| {
                let stages = geometry[class_of[j]].stages();
                JobState {
                    rng: DeterministicRng::seed_from(job.seed),
                    rotation: cfg.deterministic_mix.then(|| MixRotation::new(&cfg.mix)),
                    running: (0..stages).map(|_| None).collect(),
                    up: vec![true; stages],
                    next_fill_id: 0,
                    iterations_done: 0,
                    stage_delays: Vec::with_capacity(stages),
                    total_delay: SimDuration::ZERO,
                    downtime: SimDuration::ZERO,
                    executed_flops: 0.0,
                    lost_flops: 0.0,
                    fills_completed: 0,
                    failures: 0,
                    evictions: 0,
                    bubbles_lost: 0,
                    // Faults feed the global queue, entangling the jobs;
                    // fast-forward only arms while each job's iteration
                    // stream is provably private (mtbf == MAX).
                    detector: SteadyDetector::new(
                        cfg.fast_forward && cfg.mtbf == SimDuration::MAX,
                        cfg.steady_confirm,
                        FLEET_STEADY_HISTORY,
                    ),
                    fast_forwarded: 0,
                }
            })
            .collect();

        let plan_cache = (0..geometry.len()).map(|_| HashMap::new()).collect();
        let tput_cache = (0..geometry.len()).map(|_| HashMap::new()).collect();
        let down_until = vec![SimTime::ZERO; flat_owner.len()];

        FleetBackend {
            class_of,
            geometry,
            plan_cache,
            tput_cache,
            base,
            idle_state: SystemState::idle(SimTime::ZERO, flat_owner.len()),
            flat_owner,
            queue,
            parked: HashMap::new(),
            fail_rngs,
            down_until,
            jobs_state,
            completed_ids: Vec::new(),
            result: None,
            cfg,
        }
    }

    /// Decomposes a flat device index into (job, local stage).
    fn locate(&self, flat: usize) -> (usize, usize) {
        let job = self.flat_owner[flat];
        (job, flat - self.base[job])
    }

    /// Pipeline depth of job `j`.
    fn stages_of(&self, j: usize) -> usize {
        self.geometry[self.class_of[j]].stages()
    }

    /// True while job `j` generates fill events.
    fn job_filling(&self, j: usize) -> bool {
        self.cfg.jobs[j].executor.fill_fraction != 0.0 && self.cfg.jobs[j].iterations > 0
    }

    /// Draws the next backlog fill job for job `j`'s stage `s`.
    ///
    /// PARITY: mirrors `PhysicalBackend::draw_job` — same RNG draw order,
    /// same retry budget — so the 1-job homogeneous fleet stays
    /// bit-identical to the physical backend (the conformance suite pins
    /// this). Keep the two in sync when touching either.
    fn draw_job(&mut self, j: usize, stage: usize) -> Option<FillJobExecutor> {
        const MAX_TRIES: usize = 5;
        let class = self.class_of[j];
        let device = self.cfg.jobs[j].main_job.device.clone();
        let exec_cfg = self.cfg.jobs[j].executor;
        let backlog_gpu_hours = self.cfg.backlog_job_gpu_hours;
        for _ in 0..MAX_TRIES {
            let (model, kind) = {
                let mix = &self.cfg.mix;
                let js = &mut self.jobs_state[j];
                match js.rotation.as_mut() {
                    Some(r) => r.next(),
                    None => {
                        let model = mix.sample_model(&mut js.rng);
                        (model, mix.sample_kind(model, &mut js.rng))
                    }
                }
            };
            let plan = {
                let slots = &self.geometry[class].stage_slots[stage];
                self.plan_cache[class]
                    .entry((model, kind, stage))
                    .or_insert_with(|| {
                        if slots.is_empty() {
                            return None;
                        }
                        let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
                        plan_best(&probe, slots, &device, &exec_cfg)
                            .ok()
                            .map(Arc::new)
                    })
                    // Refcount bump, not a deep plan copy (hot path).
                    .clone()
            };
            let Some(plan) = plan else { continue };
            let throughput = *self.tput_cache[class]
                .entry((model, kind))
                .or_insert_with(|| {
                    let graph = model.build();
                    exclusive_throughput(&graph, kind, &device, &FillJobSpec::default_batch_sizes())
                        .map(|(t, _)| t)
                });
            let Some(throughput) = throughput else {
                continue;
            };
            let samples = ((backlog_gpu_hours * 3600.0 * throughput).round() as u64).max(1);
            let js = &mut self.jobs_state[j];
            let id = ((j as u64) << 32) | js.next_fill_id;
            js.next_fill_id += 1;
            let job = FillJobSpec::new(id, model, kind, samples);
            return Some(FillJobExecutor::new(job, plan));
        }
        None
    }

    /// Finds work for an idle stage: evicted fill jobs in the global
    /// queue take priority over fresh backlog draws.
    fn acquire(&mut self, j: usize, s: usize, now: SimTime) -> Option<FillLease> {
        if self.queue.queue_len() > 0 {
            let flat = self.base[j] + s;
            // Reuse the all-idle snapshot (only the clock moves) rather
            // than allocating a devices-sized state per pick — this is
            // the hot path of every refill in a large fleet.
            self.idle_state.now = now;
            if let Some(info) = self.queue.pick_for(flat, &self.idle_state) {
                let lease = self
                    .parked
                    .remove(&info.id)
                    .expect("global queue and parked map must stay in sync");
                return Some(lease);
            }
        }
        self.draw_job(j, s).map(FillLease::fresh)
    }

    /// Evicts the fill job running on job `j`'s stage `s` (device
    /// failed): work since the last checkpoint is lost, the executor
    /// rewinds, and the fill job re-enters the *global* queue — feasible
    /// on every stage of matching bubble geometry whose owner admits it.
    fn evict(&mut self, j: usize, s: usize) {
        let Some(mut lease) = self.jobs_state[j].running[s].take() else {
            return;
        };
        self.jobs_state[j].evictions += 1;
        self.jobs_state[j].lost_flops += lease.unsaved_flops;
        lease.exec.restore(lease.ckpt);
        lease.unsaved_flops = 0.0;
        lease.runs_since_ckpt = 0;
        lease.restart_debt = self.cfg.checkpoint_cost;

        let class = self.class_of[j];
        let remaining = self.geometry[class].period * lease.exec.remaining_main_iterations();
        // Locality: the plan is bound to this bubble geometry, so the
        // job is feasible exactly on stage `s` of every job in the same
        // shape class. Admission masking happens inside the queue.
        let proc_times: Vec<Option<SimDuration>> = (0..self.flat_owner.len())
            .map(|d| {
                let (oj, os) = self.locate(d);
                (self.class_of[oj] == class && os == s).then_some(remaining)
            })
            .collect();
        let info = JobInfo::new(lease.exec.job().id, lease.exec.job().arrival, proc_times);
        self.queue.requeue_from(j, info);
        self.parked.insert(lease.exec.job().id, lease);
    }

    /// The detailed result. Only valid after the driver has run.
    ///
    /// # Panics
    ///
    /// Panics if the backend has not been drained yet.
    pub fn into_result(self) -> FleetSimResult {
        self.result
            .expect("backend not drained; drive it with BackendDriver::run")
    }
}

impl EventHandler for FleetBackend {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        match event {
            ClusterEvent::StageBubbles { stage } => {
                let (j, s) = self.locate(stage);
                self.jobs_state[j].stage_delays.push(SimDuration::ZERO);
                for slot in 0..self.geometry[self.class_of[j]].stage_windows[s].len() {
                    self.on_bubble(now, stage, slot, queue);
                }
                // This job's last stage ran: its stall aggregate is
                // known, and its iteration boundary lands at its own
                // stretched period.
                if s + 1 == self.stages_of(j) {
                    let delay = critical_path_delay(&self.jobs_state[j].stage_delays);
                    queue.push(
                        now + self.geometry[self.class_of[j]].period + delay,
                        ClusterEvent::JobIterationEnd { job: j },
                    );
                }
            }
            ClusterEvent::JobIterationEnd { job: j } => {
                let delay = critical_path_delay(&self.jobs_state[j].stage_delays);
                let p = self.stages_of(j);
                let period = self.geometry[self.class_of[j]].period;
                let iterations = self.cfg.jobs[j].iterations;
                let js = &mut self.jobs_state[j];
                js.total_delay += delay;
                js.stage_delays.clear();
                js.iterations_done += 1;
                if js.iterations_done < iterations {
                    // Steady-state fast-forward, per job: each main job
                    // is an independent iteration stream while faults are
                    // off (the detector's arming gate), so a job can skip
                    // its own cycles regardless of what the rest of the
                    // fleet is doing. Mechanics as in the physical
                    // backend; the fill-id stream is replayed with the
                    // per-cycle draw stride like the fault backend's.
                    let mut next_at = now;
                    if js.detector.enabled() {
                        let counters = SteadyCounters {
                            completions: js.fills_completed as u64,
                            draws: js.next_fill_id,
                            aux: js.bubbles_lost,
                        };
                        if js.detector.observe(js.rng.state_fingerprint(), counters) {
                            let mut sig = Vec::with_capacity(2 + 10 * p);
                            sig_rotation(&js.rotation, &mut sig);
                            for (s, lease) in js.running.iter().enumerate() {
                                sig.push(js.up[s] as u64);
                                match lease {
                                    None => sig_executor(None, &mut sig),
                                    Some(l) => {
                                        sig_executor(Some(&l.exec), &mut sig);
                                        sig.push(l.unsaved_flops.to_bits());
                                        sig.push(l.runs_since_ckpt as u64);
                                        sig.push(l.restart_debt.as_nanos());
                                    }
                                }
                            }
                            let remaining = (iterations - js.iterations_done) as u64;
                            if let Some(skip) = js.detector.end_iteration(sig, delay, remaining) {
                                let stride = skip.counters.draws;
                                for m in 1..=skip.cycles {
                                    for rec in &skip.records {
                                        for &f in &rec.flops {
                                            js.executed_flops += f;
                                        }
                                        for &id in &rec.completed {
                                            self.completed_ids.push(JobId(id + m * stride));
                                        }
                                    }
                                }
                                js.total_delay += skip.delay_sum * skip.cycles;
                                js.iterations_done += skip.iterations() as usize;
                                js.fills_completed +=
                                    (skip.counters.completions * skip.cycles) as usize;
                                js.next_fill_id += skip.counters.draws * skip.cycles;
                                js.bubbles_lost += skip.counters.aux * skip.cycles;
                                js.fast_forwarded += skip.iterations();
                                // In-flight fill jobs advance with the
                                // skipped draws so post-skip completions
                                // continue the event-fidelity id stream.
                                for lease in js.running.iter_mut().flatten() {
                                    lease.exec.advance_job_id(stride * skip.cycles);
                                }
                                // Each skipped iteration would have fired
                                // one StageBubbles per stage of this job
                                // plus its JobIterationEnd.
                                queue.credit(skip.iterations() * (p as u64 + 1));
                                next_at = now + (period * skip.len + skip.delay_sum) * skip.cycles;
                            }
                        }
                    }
                    for s in 0..p {
                        queue.push(
                            next_at,
                            ClusterEvent::StageBubbles {
                                stage: self.base[j] + s,
                            },
                        );
                    }
                }
            }
            ClusterEvent::DeviceFailure { device } => {
                let (j, s) = self.locate(device);
                // A failure landing after this job's last iteration has
                // nothing left to attack; dropping it lets the queue
                // drain.
                if self.jobs_state[j].iterations_done >= self.cfg.jobs[j].iterations {
                    return;
                }
                debug_assert!(
                    self.jobs_state[j].up[s],
                    "failure on an already-down device"
                );
                // Defensive: faults gate the detector off at construction,
                // but a failure is exactly the external transition that
                // voids a cycle hypothesis, so say so explicitly too.
                self.jobs_state[j].detector.reset();
                self.jobs_state[j].failures += 1;
                self.jobs_state[j].up[s] = false;
                self.evict(j, s);
                let outage = self.fail_rngs[device].exponential_duration(self.cfg.mean_recovery);
                self.jobs_state[j].downtime += outage;
                self.down_until[device] = now + outage;
                queue.push(now + outage, ClusterEvent::DeviceRecovery { device });
            }
            ClusterEvent::DeviceRecovery { device } => {
                let (j, s) = self.locate(device);
                self.jobs_state[j].up[s] = true;
                if self.jobs_state[j].iterations_done < self.cfg.jobs[j].iterations {
                    let gap = self.fail_rngs[device].exponential_duration(self.cfg.mtbf);
                    if let Some(at) = now.checked_add(gap) {
                        queue.push(at, ClusterEvent::DeviceFailure { device });
                    }
                }
            }
            ClusterEvent::JobArrival(_)
            | ClusterEvent::JobCompletion { .. }
            | ClusterEvent::IterationEnd => {
                debug_assert!(false, "fleet backend received a foreign event");
            }
        }
    }
}

impl SimBackend for FleetBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fleet
    }

    fn prime(&mut self, sim: &mut Simulation<ClusterEvent>) {
        for j in 0..self.cfg.jobs.len() {
            if !self.job_filling(j) {
                continue;
            }
            for s in 0..self.stages_of(j) {
                sim.schedule(
                    SimTime::ZERO,
                    ClusterEvent::StageBubbles {
                        stage: self.base[j] + s,
                    },
                );
            }
        }
        if self.cfg.mtbf != SimDuration::MAX {
            for flat in 0..self.flat_owner.len() {
                let (j, _) = self.locate(flat);
                if !self.job_filling(j) {
                    continue;
                }
                let gap = self.fail_rngs[flat].exponential_duration(self.cfg.mtbf);
                if let Some(at) = SimTime::ZERO.checked_add(gap) {
                    sim.schedule(at, ClusterEvent::DeviceFailure { device: flat });
                }
            }
        }
    }

    fn on_bubble(
        &mut self,
        now: SimTime,
        stage: usize,
        slot: usize,
        _queue: &mut EventQueue<ClusterEvent>,
    ) {
        let (j, s) = self.locate(stage);
        if !self.jobs_state[j].up[s] {
            self.jobs_state[j].bubbles_lost += 1;
            return;
        }
        let window = self.geometry[self.class_of[j]].stage_windows[s][slot];
        if self.jobs_state[j].running[s].is_none() {
            let lease = self.acquire(j, s, now);
            self.jobs_state[j].running[s] = lease;
        }
        let jitter_cv = self.cfg.jitter_cv;
        let usable_fraction = self.cfg.usable_fraction;
        let switch_overhead = self.cfg.jobs[j].executor.switch_overhead;
        let ckpt_every = self.cfg.checkpoint_every_bubbles;
        let js = &mut self.jobs_state[j];
        let Some(lease) = js.running[s].as_mut() else {
            return;
        };
        // A revived fill job reloads its checkpoint before any new work;
        // the reload consumes whole bubbles without stalling the main
        // job.
        if !lease.restart_debt.is_zero() {
            let usable = window.duration.mul_f64(usable_fraction);
            lease.restart_debt = lease.restart_debt.saturating_sub(usable);
            return;
        }
        let run = lease.exec.on_bubble(slot);
        if run.time_used.is_zero() && run.samples_completed == 0 && !run.job_finished {
            return;
        }
        lease.unsaved_flops += run.flops;
        lease.runs_since_ckpt += 1;
        let finished = run.job_finished;
        let finished_id = lease.exec.job().id;
        if !finished && lease.runs_since_ckpt >= ckpt_every {
            lease.ckpt = lease.exec.checkpoint();
            lease.unsaved_flops = 0.0;
            lease.runs_since_ckpt = 0;
        }
        js.executed_flops += run.flops;
        js.detector.record_flops(run.flops);
        // Jittered reality, identical to the physical backend: bubble
        // and partition both deviate from their profiled durations.
        let actual_window = window.duration.mul_f64(js.rng.jitter(jitter_cv));
        let used = switch_overhead + run.time_used.mul_f64(js.rng.jitter(jitter_cv));
        let usable = actual_window.mul_f64(usable_fraction);
        let delay = used.saturating_sub(usable);
        if js.stage_delays.is_empty() {
            js.stage_delays.push(SimDuration::ZERO);
        }
        *js.stage_delays.last_mut().expect("just ensured non-empty") += delay;
        if finished {
            js.fills_completed += 1;
            js.detector.record_completion(finished_id.0);
            js.running[s] = None;
            self.completed_ids.push(finished_id);
        }
    }

    fn drain(&mut self, _now: SimTime) {
        let mut jobs = Vec::with_capacity(self.cfg.jobs.len());
        let mut device_time = 0.0f64;
        let mut weighted_main = 0.0f64;
        let mut weighted_slowdown = 0.0f64;
        let mut weighted_bubble = 0.0f64;
        let mut total_stages = 0usize;
        let mut total_surviving = 0.0f64;
        let mut total_lost = 0.0f64;
        let mut fleet_elapsed = SimDuration::ZERO;
        let mut fills_completed = 0usize;
        let mut failures = 0u64;
        let mut evictions = 0u64;
        let mut fast_forwarded = 0u64;

        for (j, job_cfg) in self.cfg.jobs.iter().enumerate() {
            let class = self.class_of[j];
            let geo = &self.geometry[class];
            let p = geo.stages();
            let iterations = job_cfg.iterations;
            let nominal_total = geo.period * iterations as u64;
            let js = &mut self.jobs_state[j];
            let elapsed = nominal_total + js.total_delay;
            // Outages in flight at the end only count up to this job's
            // final iteration boundary.
            let run_end = SimTime::ZERO + elapsed;
            for s in 0..p {
                let until = self.down_until[self.base[j] + s];
                js.downtime = js.downtime.saturating_sub(until.saturating_since(run_end));
            }
            let slowdown = if iterations == 0 {
                0.0
            } else {
                js.total_delay.as_secs_f64() / nominal_total.as_secs_f64()
            };
            let surviving = (js.executed_flops - js.lost_flops).max(0.0);
            let main_tflops = geo.main_nominal / (1.0 + slowdown);

            device_time += p as f64 * elapsed.as_secs_f64();
            weighted_main += main_tflops * p as f64;
            weighted_slowdown += slowdown * p as f64;
            weighted_bubble += geo.bubble_ratio * p as f64;
            total_stages += p;
            total_surviving += surviving;
            total_lost += js.lost_flops;
            fleet_elapsed = fleet_elapsed.max(elapsed);
            fills_completed += js.fills_completed;
            failures += js.failures;
            evictions += js.evictions;
            fast_forwarded += js.fast_forwarded;

            jobs.push(FleetJobResult {
                job: j,
                gpus: job_cfg.main_job.parallelism.total_gpus(),
                stages: p,
                device: job_cfg.main_job.device.name.clone(),
                fill_fraction: job_cfg.executor.fill_fraction,
                iterations,
                nominal_period: geo.period,
                mean_period: if iterations == 0 {
                    geo.period
                } else {
                    geo.period + js.total_delay / iterations as u64
                },
                main_slowdown: slowdown,
                bubble_ratio: geo.bubble_ratio,
                elapsed,
                fill_flops: surviving,
                lost_fill_flops: js.lost_flops,
                recovered_tflops_per_gpu: if surviving == 0.0 || elapsed.is_zero() {
                    // The elapsed guard covers degenerate zero-iteration
                    // jobs, where the division would mint a NaN that
                    // flows straight into fleet_scale.csv.
                    0.0
                } else {
                    surviving / (p as f64 * elapsed.as_secs_f64()) / 1e12
                },
                main_tflops_per_gpu: main_tflops,
                fill_jobs_completed: js.fills_completed,
                failures: js.failures,
                evictions: js.evictions,
                bubbles_lost: js.bubbles_lost,
                downtime: js.downtime,
            });
        }

        // A degenerate fleet — no stages (empty job list) or a zero
        // horizon (zero iterations everywhere) — must aggregate to zeros,
        // not to the NaNs the unguarded divisions would produce (which
        // then land silently in fleet_scale.csv).
        let per_stage = |weighted: f64| {
            if total_stages == 0 {
                0.0
            } else {
                weighted / total_stages as f64
            }
        };
        self.result = Some(FleetSimResult {
            total_gpus: jobs.iter().map(|r| r.gpus).sum(),
            num_devices: self.flat_owner.len(),
            elapsed: fleet_elapsed,
            fill_flops: total_surviving,
            lost_fill_flops: total_lost,
            recovered_tflops_per_gpu: if total_surviving == 0.0 || device_time == 0.0 {
                0.0
            } else {
                total_surviving / device_time / 1e12
            },
            main_tflops_per_gpu: per_stage(weighted_main),
            mean_slowdown: per_stage(weighted_slowdown),
            bubble_ratio: per_stage(weighted_bubble),
            fill_jobs_completed: fills_completed,
            completed_fill_ids: std::mem::take(&mut self.completed_ids),
            failures,
            evictions,
            cross_job_dispatches: self.queue.cross_job_dispatches(),
            peak_queue_depth: self.queue.peak_depth(),
            left_in_queue: self.queue.queue_len(),
            goodput_fraction: BackendMetrics::goodput_of(total_surviving, total_lost),
            iterations_fast_forwarded: fast_forwarded,
            jobs,
        });
    }

    fn metrics(&self, events_dispatched: u64) -> BackendMetrics {
        let result = self
            .result
            .as_ref()
            .expect("metrics requested before drain");
        BackendMetrics {
            kind: BackendKind::Fleet,
            num_devices: result.num_devices,
            elapsed: result.elapsed,
            events_dispatched,
            fill_flops: result.fill_flops,
            recovered_tflops_per_gpu: result.recovered_tflops_per_gpu,
            main_tflops_per_gpu: result.main_tflops_per_gpu,
            main_slowdown: result.mean_slowdown,
            bubble_ratio: result.bubble_ratio,
            jobs_completed: result.fill_jobs_completed,
            evictions: result.evictions,
            lost_fill_flops: result.lost_fill_flops,
            goodput_fraction: result.goodput_fraction,
        }
    }
}

/// The fleet simulator: the convenience entry point wrapping
/// [`FleetBackend`] in a [`BackendDriver`]. See module docs.
#[derive(Debug)]
pub struct FleetSim {
    config: FleetSimConfig,
}

impl FleetSim {
    /// Creates a simulator.
    pub fn new(config: FleetSimConfig) -> Self {
        FleetSim { config }
    }

    /// Runs the simulation on the shared event kernel.
    pub fn run(&self) -> FleetSimResult {
        let (_, backend) = BackendDriver::new(FleetBackend::new(self.config.clone())).run();
        backend.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::PhysicalSim;

    fn physical_config(seed: u64) -> PhysicalSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main);
        cfg.iterations = 120;
        cfg.seed = seed;
        cfg
    }

    fn twin_fleet(seed: u64) -> FleetSimConfig {
        // Two identical jobs, both admitting foreign fill work.
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut a = FleetJobConfig::new(main.clone());
        a.iterations = 120;
        a.seed = seed;
        let mut b = FleetJobConfig::new(main);
        b.iterations = 120;
        b.seed = seed ^ 0xABCD;
        let mut cfg = FleetSimConfig::new(vec![a, b]);
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn degenerate_zero_horizon_fleet_reports_finite_zeros() {
        // A fleet whose every job simulates zero iterations has no
        // elapsed time and no bubbles; the aggregate divisions must not
        // mint NaN (which would flow silently into fleet_scale.csv).
        let mut cfg = twin_fleet(11);
        for job in &mut cfg.jobs {
            job.iterations = 0;
        }
        let result = FleetSim::new(cfg).run();
        assert_eq!(result.elapsed, SimDuration::ZERO);
        assert_eq!(result.fill_flops, 0.0);
        for (name, v) in [
            ("recovered", result.recovered_tflops_per_gpu),
            ("main", result.main_tflops_per_gpu),
            ("slowdown", result.mean_slowdown),
            ("bubble", result.bubble_ratio),
            ("goodput", result.goodput_fraction),
        ] {
            assert!(v.is_finite(), "{name} = {v}");
        }
        for job in &result.jobs {
            assert!(job.recovered_tflops_per_gpu.is_finite());
            assert!(job.main_tflops_per_gpu.is_finite());
            assert!(job.main_slowdown.is_finite());
            assert_eq!(job.mean_period, job.nominal_period);
        }
        // The per-job main TFLOPS aggregate is still the nominal rate —
        // the guard zeroes only truly stage-less fleets.
        assert!(result.main_tflops_per_gpu > 0.0);
    }

    #[test]
    fn single_job_fleet_matches_physical_bit_for_bit() {
        // The degenerate pin: one homogeneous job, no faults — every
        // randomness-consuming code path is the physical backend's.
        let phys_cfg = physical_config(7);
        let phys = PhysicalSim::new(phys_cfg.clone()).run();
        let fleet = FleetSim::new(FleetSimConfig::from_physical(&phys_cfg)).run();
        assert_eq!(fleet.jobs.len(), 1);
        let job = &fleet.jobs[0];
        assert_eq!(job.fill_flops, phys.fill_flops);
        assert_eq!(job.recovered_tflops_per_gpu, phys.recovered_tflops_per_gpu);
        assert_eq!(job.main_tflops_per_gpu, phys.main_tflops_per_gpu);
        assert_eq!(job.main_slowdown, phys.main_slowdown);
        assert_eq!(job.mean_period, phys.mean_period);
        assert_eq!(job.nominal_period, phys.nominal_period);
        assert_eq!(job.fill_jobs_completed, phys.jobs_completed);
        // The aggregate view of a 1-job fleet is the job itself.
        assert_eq!(fleet.fill_flops, phys.fill_flops);
        assert_eq!(
            fleet.recovered_tflops_per_gpu,
            phys.recovered_tflops_per_gpu
        );
        assert_eq!(fleet.evictions, 0);
        assert_eq!(fleet.cross_job_dispatches, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = twin_fleet(11).with_mtbf(SimDuration::from_secs(400));
        let a = FleetSim::new(cfg.clone()).run();
        let b = FleetSim::new(cfg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn jobs_are_independent_without_faults() {
        // A job's workload stream is its own: adding a second job to the
        // fleet must not perturb the first one's results.
        let solo = FleetSim::new(FleetSimConfig::from_physical(&physical_config(3))).run();
        let mut duo_cfg = twin_fleet(3);
        duo_cfg.jobs[0].seed = 3;
        let duo = FleetSim::new(duo_cfg).run();
        assert_eq!(duo.jobs[0].fill_flops, solo.jobs[0].fill_flops);
        assert_eq!(duo.jobs[0].main_slowdown, solo.jobs[0].main_slowdown);
    }

    #[test]
    fn failures_route_evictions_through_the_global_queue() {
        let cfg = twin_fleet(5).with_mtbf(SimDuration::from_secs(200));
        let r = FleetSim::new(cfg).run();
        assert!(r.failures > 0, "no failures at a 200s MTBF");
        assert!(r.evictions > 0, "failures never evicted a fill job");
        assert!(r.lost_fill_flops > 0.0);
        assert!(r.goodput_fraction < 1.0);
        assert!(r.peak_queue_depth > 0, "evictions never reached the queue");
        // Both jobs share a shape class and admit foreign work, so the
        // global queue resumes evictions across job boundaries.
        assert!(
            r.cross_job_dispatches > 0,
            "global queue never dispatched across jobs"
        );
        // Goodput is consistent with the flops split.
        let expect = r.fill_flops / (r.fill_flops + r.lost_fill_flops);
        assert!((r.goodput_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn admission_gates_cross_job_dispatch() {
        let mut cfg = twin_fleet(5).with_mtbf(SimDuration::from_secs(200));
        for job in &mut cfg.jobs {
            job.admits_foreign = false;
        }
        let r = FleetSim::new(cfg).run();
        assert!(r.evictions > 0);
        assert_eq!(
            r.cross_job_dispatches, 0,
            "admission off, yet work crossed jobs"
        );
    }

    #[test]
    fn completed_fill_ids_are_unique_under_churn() {
        let cfg = twin_fleet(9).with_mtbf(SimDuration::from_secs(200));
        let r = FleetSim::new(cfg).run();
        assert!(r.evictions > 0);
        let mut ids = r.completed_fill_ids.clone();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len(), "a fill job completed twice");
        assert_eq!(r.completed_fill_ids.len(), r.fill_jobs_completed);
    }

    #[test]
    fn heterogeneous_fleet_runs_and_aggregates() {
        let workload = FleetWorkloadConfig {
            jobs: 6,
            target_gpus: 6 * 64,
            seed: 13,
            iterations: 30,
        };
        let cfg = FleetSimConfig::from_workload(&workload);
        let r = FleetSim::new(cfg).run();
        assert_eq!(r.jobs.len(), 6);
        assert!(r.total_gpus > 0);
        assert!(r.num_devices >= 6 * 8);
        // Filling jobs recover throughput; opted-out jobs recover none.
        for job in &r.jobs {
            if job.fill_fraction == 0.0 {
                assert_eq!(job.recovered_tflops_per_gpu, 0.0);
                assert_eq!(job.main_slowdown, 0.0);
            }
            assert!(job.main_tflops_per_gpu > 0.0);
            assert!((0.0..=1.0).contains(&job.bubble_ratio));
        }
        assert!(r.fill_flops > 0.0);
        assert!(r.recovered_tflops_per_gpu > 0.0);
        assert!(r.elapsed >= r.jobs.iter().map(|j| j.elapsed).max().unwrap());
    }

    #[test]
    fn no_fill_fleet_is_inert() {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut job = FleetJobConfig::new(main);
        job.executor.fill_fraction = 0.0;
        job.iterations = 50;
        let cfg = FleetSimConfig::new(vec![job]).with_mtbf(SimDuration::from_secs(60));
        let r = FleetSim::new(cfg).run();
        assert_eq!(r.fill_flops, 0.0);
        assert_eq!(r.failures, 0, "failure chain must not outlive filling");
        assert_eq!(r.mean_slowdown, 0.0);
    }

    fn quiescent_fleet(jobs: usize, iterations: usize) -> FleetSimConfig {
        // No jitter, deterministic single-model mix, small fill jobs:
        // every job's iteration stream cycles quickly, so fast-forward
        // fires (each job still owns a distinct seed, which only matters
        // for sampled mixes — kept distinct to mirror real fleets).
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let jobs = (0..jobs)
            .map(|j| {
                let mut job = FleetJobConfig::new(main.clone());
                job.iterations = iterations;
                job.seed = 7 + j as u64;
                job
            })
            .collect();
        let mut cfg = FleetSimConfig::new(jobs);
        cfg.jitter_cv = 0.0;
        cfg.deterministic_mix = true;
        cfg.mix = ModelMix::single(pipefill_model_zoo::ModelId::EfficientNet);
        cfg.backlog_job_gpu_hours = 0.002;
        cfg
    }

    #[test]
    fn fast_forward_matches_event_fidelity_bit_for_bit() {
        let cfg = quiescent_fleet(1, 400);
        let mut off = cfg.clone();
        off.fast_forward = false;
        let mut r_on = FleetSim::new(cfg).run();
        let r_off = FleetSim::new(off).run();
        assert!(
            r_on.iterations_fast_forwarded > 0,
            "steady state never detected"
        );
        assert_eq!(r_off.iterations_fast_forwarded, 0);
        assert_eq!(r_on.fill_flops.to_bits(), r_off.fill_flops.to_bits());
        r_on.iterations_fast_forwarded = 0;
        assert_eq!(r_on, r_off);
    }

    #[test]
    fn multi_job_fast_forward_matches_per_job_results_bit_for_bit() {
        // Each job skips its own cycles independently. The per-job
        // results (and the completed-id *set*) are bit-identical either
        // way; only the global completion interleaving may differ, since
        // a skipping job appends a cycle's completions at once.
        let cfg = quiescent_fleet(3, 400);
        let mut off = cfg.clone();
        off.fast_forward = false;
        let r_on = FleetSim::new(cfg).run();
        let r_off = FleetSim::new(off).run();
        assert!(r_on.iterations_fast_forwarded > 0);
        assert_eq!(r_on.jobs, r_off.jobs);
        assert_eq!(r_on.fill_flops.to_bits(), r_off.fill_flops.to_bits());
        assert_eq!(r_on.fill_jobs_completed, r_off.fill_jobs_completed);
        let mut on_ids = r_on.completed_fill_ids.clone();
        let mut off_ids = r_off.completed_fill_ids.clone();
        on_ids.sort_unstable();
        off_ids.sort_unstable();
        assert_eq!(on_ids, off_ids);
    }

    #[test]
    fn jittered_fleets_never_fast_forward() {
        let r = FleetSim::new(twin_fleet(11)).run();
        assert_eq!(r.iterations_fast_forwarded, 0);
    }

    #[test]
    #[should_panic(expected = "at least one main job")]
    fn empty_fleet_rejected() {
        let _ = FleetBackend::new(FleetSimConfig {
            jobs: vec![],
            policy: PolicyKind::Fifo,
            mix: ModelMix::paper_mix(),
            jitter_cv: 0.08,
            usable_fraction: 0.88,
            backlog_job_gpu_hours: 0.02,
            deterministic_mix: false,
            seed: 7,
            mtbf: SimDuration::MAX,
            mean_recovery: SimDuration::from_secs(120),
            checkpoint_cost: SimDuration::from_secs(2),
            checkpoint_every_bubbles: 8,
            fast_forward: true,
            steady_confirm: 1,
        });
    }
}
