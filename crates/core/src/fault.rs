//! The heterogeneous, failure-injecting cluster simulator.
//!
//! The third fidelity level behind the [`SimBackend`](crate::SimBackend)
//! seam. It extends the fine-grained physical model along the two axes the
//! paper's testbed cannot express:
//!
//! * **Heterogeneous stages** — each pipeline stage may run a different
//!   GPU generation ([`FaultSimConfig::stage_devices`]). The slowest
//!   stage paces the pipeline, so the iteration period stretches to
//!   `period × max(slowdown)` and every *other* stage gains idle time:
//!   its fillable windows grow by exactly the slack the pacing stage
//!   creates (Zero-Bubble-style bubble-geometry shifts under hardware
//!   variation). Execution plans, free bubble memory and fill throughput
//!   are all derived from the stage's own device spec.
//! * **Fault injection** — each device fails as a Poisson process with a
//!   configurable MTBF ([`FaultSimConfig::mtbf`]). A failure evicts the
//!   fill job running on that stage: work since the job's last checkpoint
//!   is charged to `lost_fill_flops`, the executor rewinds to the
//!   checkpoint, and the job re-enters the
//!   [`FillJobScheduler`](pipefill_scheduler::FillJobScheduler) with its
//!   original arrival time (FreeRide-style preemption accounting: side
//!   jobs survive eviction but pay for it). When the stage recovers, the
//!   revived job must burn [`FaultSimConfig::checkpoint_cost`] of bubble
//!   time reloading state before it makes progress. Bubbles that pass
//!   while a stage is down are lost to filling. The *main* job's own
//!   fault tolerance (elastic redundancy, hot spares) is out of scope:
//!   failures here attack the fill layer, which is exactly the part
//!   FreeRide shows must survive preemption — so `main_slowdown` keeps
//!   the physical backend's meaning (fill-overrun stalls only).
//!
//! With an infinite MTBF and a homogeneous device list, every code path
//! that consumes randomness is identical to
//! [`PhysicalBackend`](crate::PhysicalBackend)'s, so the no-fault fault
//! backend reproduces the physical backend *bit for bit* — which is what
//! makes the cross-backend conformance suite
//! (`tests/backend_conformance.rs`) an exact regression gate rather than
//! a statistical one.
//!
//! Determinism is structural, as everywhere else: workload randomness
//! comes from one seeded [`DeterministicRng`] stream shared with the
//! physical backend's draw order, failure processes own per-stage forked
//! streams (so sweeping the MTBF never perturbs the workload), and all
//! event ordering goes through the kernel queue.

use std::collections::HashMap;
use std::sync::Arc;

use pipefill_device::DeviceSpec;
use pipefill_executor::{
    exclusive_throughput, plan_best, ExecutionPlan, ExecutorConfig, FillJobExecutor, FillJobSpec,
    JobId,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::{BubbleWindow, MainJobSpec};
use pipefill_scheduler::{Fifo, FillJobScheduler, JobInfo, SystemState};
use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendDriver, BackendKind, BackendMetrics, ClusterEvent, SimBackend};
use crate::ff::{SteadyCounters, SteadyDetector};
use crate::physical::{
    critical_path_delay, sig_executor, sig_rotation, MixRotation, STEADY_HISTORY,
};

/// Heterogeneous + fault-injecting simulation parameters.
#[derive(Debug, Clone)]
pub struct FaultSimConfig {
    /// The main job; its device is the *baseline* GPU that heterogeneous
    /// stages are expressed relative to.
    pub main_job: MainJobSpec,
    /// Executor tuning; `fill_fraction == 0.0` disables filling.
    pub executor: ExecutorConfig,
    /// Fill-job model mix (devices draw from an infinite backlog).
    pub mix: ModelMix,
    /// Main-job iterations to simulate.
    pub iterations: usize,
    /// RNG seed (workload stream; failure streams are forked per stage).
    pub seed: u64,
    /// Coefficient of variation of the multiplicative timing jitter.
    pub jitter_cv: f64,
    /// Fraction of each (jittered) bubble actually usable for filling.
    pub usable_fraction: f64,
    /// Size of each backlog job in GPU-hours.
    pub backlog_job_gpu_hours: f64,
    /// Draw backlog jobs by weighted round-robin instead of random
    /// sampling (exact mix realization, as in the Fig. 6 runs).
    pub deterministic_mix: bool,
    /// Per-stage GPU specs. Empty means homogeneous: every stage runs
    /// `main_job.device`. When non-empty the length must equal the
    /// pipeline depth.
    pub stage_devices: Vec<DeviceSpec>,
    /// Per-device mean time between failures. [`SimDuration::MAX`]
    /// disables fault injection entirely.
    pub mtbf: SimDuration,
    /// Mean outage length once a device fails.
    pub mean_recovery: SimDuration,
    /// Bubble time an evicted job must burn reloading its checkpoint
    /// before it resumes making progress after recovery.
    pub checkpoint_cost: SimDuration,
    /// A job checkpoints automatically after this many executed bubble
    /// partitions; work since the last checkpoint is lost on eviction.
    pub checkpoint_every_bubbles: usize,
    /// Steady-state fast-forward (see
    /// [`PhysicalSimConfig::fast_forward`](crate::PhysicalSimConfig)).
    /// Only armed when fault injection is off (`mtbf == MAX`): failure
    /// events are external transitions that void any cycle hypothesis.
    pub fast_forward: bool,
    /// Signature matches required before the first fast-forward skip;
    /// `u32::MAX` pins fast-forward off (see
    /// [`PhysicalSimConfig::steady_confirm`](crate::PhysicalSimConfig)).
    pub steady_confirm: u32,
}

impl FaultSimConfig {
    /// Defaults matching [`crate::PhysicalSimConfig::new`] with faults
    /// disabled and a homogeneous cluster — the configuration under which
    /// this backend reproduces the physical backend exactly.
    pub fn new(main_job: MainJobSpec) -> Self {
        FaultSimConfig {
            main_job,
            executor: ExecutorConfig::default(),
            mix: ModelMix::paper_mix(),
            iterations: 200,
            seed: 7,
            jitter_cv: 0.08,
            usable_fraction: 0.88,
            backlog_job_gpu_hours: 0.02,
            deterministic_mix: false,
            stage_devices: Vec::new(),
            mtbf: SimDuration::MAX,
            mean_recovery: SimDuration::from_secs(120),
            checkpoint_cost: SimDuration::from_secs(2),
            checkpoint_every_bubbles: 8,
            fast_forward: true,
            steady_confirm: 1,
        }
    }

    /// A heterogeneous pipeline: one device spec per stage.
    pub fn heterogeneous(main_job: MainJobSpec, stage_devices: Vec<DeviceSpec>) -> Self {
        let mut cfg = FaultSimConfig::new(main_job);
        cfg.stage_devices = stage_devices;
        cfg
    }

    /// Sets the fill fraction (0.0 = no-filling baseline).
    pub fn with_fill_fraction(mut self, f: f64) -> Self {
        if f == 0.0 {
            self.executor.fill_fraction = 0.0;
        } else {
            self.executor = self.executor.with_fill_fraction(f);
        }
        self
    }

    /// Sets the model mix.
    pub fn with_mix(mut self, mix: ModelMix) -> Self {
        self.mix = mix;
        self
    }

    /// Sets the mean time between failures per device.
    pub fn with_mtbf(mut self, mtbf: SimDuration) -> Self {
        self.mtbf = mtbf;
        self
    }

    /// Sets the checkpoint-restart cost charged to each eviction.
    pub fn with_checkpoint_cost(mut self, cost: SimDuration) -> Self {
        self.checkpoint_cost = cost;
        self
    }
}

/// Heterogeneous + fault simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSimResult {
    /// Iterations simulated.
    pub iterations: usize,
    /// Undisturbed iteration period of the (possibly heterogeneous)
    /// pipeline — already stretched to the pacing stage.
    pub nominal_period: SimDuration,
    /// Mean iteration period including fill-overrun stalls.
    pub mean_period: SimDuration,
    /// Main-job slowdown from fill-overrun stalls (outages attack the
    /// fill layer, not the main job — see the module docs).
    pub main_slowdown: f64,
    /// Fill FLOPs that survived (executed minus lost to evictions).
    pub fill_flops: f64,
    /// Fill FLOPs executed but lost to evictions.
    pub lost_fill_flops: f64,
    /// Surviving fill TFLOPS per GPU over the stretched run.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU (heterogeneity- and slowdown-adjusted).
    pub main_tflops_per_gpu: f64,
    /// Fill jobs completed.
    pub jobs_completed: usize,
    /// Ids of completed jobs, in completion order. A job evicted and
    /// revived appears at most once — the double-completion invariant the
    /// property suite checks.
    pub completed_job_ids: Vec<JobId>,
    /// Device failures injected.
    pub failures: u64,
    /// Fill jobs evicted by failures.
    pub evictions: u64,
    /// Bubbles that passed while their stage was down.
    pub bubbles_lost: u64,
    /// Total device downtime across the run (outages in flight at the
    /// end are clamped to the run's span).
    pub downtime: SimDuration,
    /// `fill_flops / (fill_flops + lost_fill_flops)`; 1 when nothing ran.
    pub goodput_fraction: f64,
    /// Iterations skipped analytically by steady-state fast-forward
    /// (always zero while fault injection is on).
    pub iterations_fast_forwarded: u64,
}

impl FaultSimResult {
    /// Aggregate TFLOPS per GPU.
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

/// A fill job bound to a stage, with the checkpoint state eviction needs.
#[derive(Debug)]
struct StageJob {
    exec: FillJobExecutor,
    ckpt: pipefill_executor::ExecutorCheckpoint,
    /// FLOPs executed since `ckpt` — lost if the device fails now.
    unsaved_flops: f64,
    /// Bubble partitions executed since `ckpt`.
    runs_since_ckpt: usize,
    /// Bubble time still owed to checkpoint reloading after a revival.
    restart_debt: SimDuration,
}

impl StageJob {
    fn fresh(exec: FillJobExecutor) -> Self {
        let ckpt = exec.checkpoint();
        StageJob {
            exec,
            ckpt,
            unsaved_flops: 0.0,
            runs_since_ckpt: 0,
            restart_debt: SimDuration::ZERO,
        }
    }
}

/// The heterogeneous, failure-injecting backend. See the module docs for
/// the model; see [`PhysicalBackend`](crate::PhysicalBackend) for the
/// bubble-execution mechanics the two fidelities share.
pub struct FaultBackend {
    cfg: FaultSimConfig,
    /// Stretched iteration period (pacing-stage adjusted).
    period: SimDuration,
    /// Main-job TFLOPS per GPU at the stretched period, before slowdown.
    main_nominal: f64,
    /// Estimated bubble ratio of the heterogeneous pipeline.
    bubble_ratio: f64,
    stage_windows: Vec<Vec<BubbleWindow>>,
    stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>>,
    stage_devices: Vec<DeviceSpec>,
    /// For each stage, the index of the first stage with an identical
    /// device spec — the throughput-cache key, so homogeneous clusters
    /// profile each (model, kind) once, not once per stage.
    stage_class: Vec<usize>,
    /// Workload stream — draw order mirrors the physical backend.
    rng: DeterministicRng,
    /// Per-stage failure processes, independent of the workload stream.
    fail_rngs: Vec<DeterministicRng>,
    plan_cache: HashMap<(ModelId, JobKind, usize), Option<Arc<ExecutionPlan>>>,
    /// Exclusive throughput per (model, kind, device class).
    tput_cache: HashMap<(ModelId, JobKind, usize), Option<f64>>,
    rotation: Option<MixRotation>,
    /// Evicted jobs wait here; `evicted` parks their executor state.
    scheduler: FillJobScheduler,
    evicted: HashMap<JobId, StageJob>,
    stage_jobs: Vec<Option<StageJob>>,
    up: Vec<bool>,
    /// End of each stage's outage in flight, for clamping the last
    /// outage's downtime to the run.
    down_until: Vec<SimTime>,
    next_job_id: u64,
    iterations_done: usize,
    stage_delays: Vec<SimDuration>,
    total_delay: SimDuration,
    downtime: SimDuration,
    /// All fill FLOPs executed, surviving or not.
    executed_flops: f64,
    lost_flops: f64,
    jobs_completed: usize,
    completed_ids: Vec<JobId>,
    failures: u64,
    evictions: u64,
    bubbles_lost: u64,
    detector: SteadyDetector,
    fast_forwarded: u64,
    result: Option<FaultSimResult>,
}

impl FaultBackend {
    /// Builds the backend: profiles the baseline pipeline once, then
    /// re-derives per-stage bubble geometry from the stage devices.
    ///
    /// # Panics
    ///
    /// Panics if `stage_devices` is non-empty with a length different
    /// from the pipeline depth.
    pub fn new(cfg: FaultSimConfig) -> Self {
        let timeline = cfg.main_job.engine_timeline();
        let base_period = timeline.period;
        let base_nominal = cfg.main_job.main_job_tflops_per_gpu(&timeline);
        let base_ratio = timeline.bubble_ratio();
        let p = timeline.stages.len();
        let baseline = &cfg.main_job.device;

        let stage_devices: Vec<DeviceSpec> = if cfg.stage_devices.is_empty() {
            vec![baseline.clone(); p]
        } else {
            assert_eq!(
                cfg.stage_devices.len(),
                p,
                "stage_devices must cover every pipeline stage ({p})"
            );
            cfg.stage_devices.clone()
        };
        // slow_s > 1 ⇒ stage s is slower than the baseline; the slowest
        // stage paces the pipeline.
        let slow: Vec<f64> = stage_devices
            .iter()
            .map(|d| 1.0 / d.relative_speed(baseline))
            .collect();
        let max_slow = slow.iter().cloned().fold(f64::MIN, f64::max);
        let period = base_period.mul_f64(max_slow);

        // Stage s keeps its busy time (scaled by its own slowness) and
        // absorbs the pacing slack as extra fillable span:
        //   W'_s = P' − slow_s × (P − W_s)
        // which reduces to W_s when the cluster is homogeneous.
        let stage_windows: Vec<Vec<BubbleWindow>> = timeline
            .stages
            .iter()
            .enumerate()
            .map(|(s, stage)| {
                let windows = stage.fillable_windows();
                let w_total: SimDuration = windows.iter().map(|w| w.duration).sum();
                if w_total.is_zero() {
                    return windows;
                }
                let busy = base_period.saturating_sub(w_total).mul_f64(slow[s]);
                let w_new = period.saturating_sub(busy);
                let scale = w_new.as_secs_f64() / w_total.as_secs_f64();
                let mem_scale = stage_devices[s].hbm.as_f64() / baseline.hbm.as_f64();
                windows
                    .into_iter()
                    .map(|w| BubbleWindow {
                        duration: w.duration.mul_f64(scale),
                        free_memory: w.free_memory.mul_f64(mem_scale),
                        offset: w.offset.mul_f64(slow[s]),
                        kind: w.kind,
                    })
                    .collect()
            })
            .collect();
        let stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>> = stage_windows
            .iter()
            .map(|ws| ws.iter().map(|w| (w.duration, w.free_memory)).collect())
            .collect();

        // The main job's FLOPs per iteration are unchanged; only the
        // period stretched, so the per-GPU rate scales by P/P'. The
        // bubble-ratio estimate scales the busy share the same way.
        let period_ratio = base_period.as_secs_f64() / period.as_secs_f64();
        let avg_slow = slow.iter().sum::<f64>() / p as f64;
        let main_nominal = base_nominal * period_ratio;
        let bubble_ratio = (1.0 - (1.0 - base_ratio) * avg_slow * period_ratio).clamp(0.0, 1.0);

        let stage_class: Vec<usize> = (0..p)
            .map(|s| {
                (0..s)
                    .find(|&t| stage_devices[t] == stage_devices[s])
                    .unwrap_or(s)
            })
            .collect();

        let rng = DeterministicRng::seed_from(cfg.seed);
        // Failure streams are forked from a *separate* root so MTBF
        // sweeps never perturb the workload stream.
        let mut fail_root = DeterministicRng::seed_from(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let fail_rngs: Vec<DeterministicRng> = (0..p).map(|_| fail_root.fork()).collect();
        let rotation = cfg.deterministic_mix.then(|| MixRotation::new(&cfg.mix));
        // Failure events are external transitions that would invalidate
        // any detected cycle, so fast-forward only arms with faults off —
        // the configuration where this backend is a (possibly
        // heterogeneous) pure iteration loop like the physical one.
        let detector = SteadyDetector::new(
            cfg.fast_forward && cfg.mtbf == SimDuration::MAX,
            cfg.steady_confirm,
            STEADY_HISTORY,
        );

        FaultBackend {
            period,
            main_nominal,
            bubble_ratio,
            stage_windows,
            stage_slots,
            stage_devices,
            stage_class,
            rng,
            fail_rngs,
            plan_cache: HashMap::new(),
            tput_cache: HashMap::new(),
            rotation,
            scheduler: FillJobScheduler::new(Box::new(Fifo)),
            evicted: HashMap::new(),
            stage_jobs: (0..p).map(|_| None).collect(),
            up: vec![true; p],
            down_until: vec![SimTime::ZERO; p],
            next_job_id: 0,
            iterations_done: 0,
            stage_delays: Vec::with_capacity(p),
            total_delay: SimDuration::ZERO,
            downtime: SimDuration::ZERO,
            executed_flops: 0.0,
            lost_flops: 0.0,
            jobs_completed: 0,
            completed_ids: Vec::new(),
            failures: 0,
            evictions: 0,
            bubbles_lost: 0,
            detector,
            fast_forwarded: 0,
            result: None,
            cfg,
        }
    }

    /// Pipeline depth.
    fn stages(&self) -> usize {
        self.stage_windows.len()
    }

    /// True while fill events exist (mirrors the physical prime guard;
    /// failure processes are pointless without them).
    fn filling(&self) -> bool {
        self.cfg.executor.fill_fraction != 0.0 && self.cfg.iterations > 0
    }

    /// Draws the next backlog job for a stage against that stage's device
    /// and bubble geometry.
    ///
    /// PARITY: this mirrors `PhysicalBackend::draw_job` — same RNG draw
    /// order, same retry budget — so the no-fault homogeneous run stays
    /// bit-identical to the physical backend (the conformance suite pins
    /// this). Keep the two in sync when touching either.
    fn draw_job(&mut self, stage: usize) -> Option<FillJobExecutor> {
        const MAX_TRIES: usize = 5;
        let cfg = &self.cfg;
        let device = self.stage_devices[stage].clone();
        for _ in 0..MAX_TRIES {
            let (model, kind) = match self.rotation.as_mut() {
                Some(r) => r.next(),
                None => {
                    let model = cfg.mix.sample_model(&mut self.rng);
                    (model, cfg.mix.sample_kind(model, &mut self.rng))
                }
            };
            let plan = self
                .plan_cache
                .entry((model, kind, stage))
                .or_insert_with(|| {
                    let slots = &self.stage_slots[stage];
                    if slots.is_empty() {
                        return None;
                    }
                    let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
                    plan_best(&probe, slots, &device, &cfg.executor)
                        .ok()
                        .map(Arc::new)
                })
                // Refcount bump, not a deep plan copy (hot path).
                .clone();
            let Some(plan) = plan else { continue };
            let class = self.stage_class[stage];
            let throughput = *self
                .tput_cache
                .entry((model, kind, class))
                .or_insert_with(|| {
                    let graph = model.build();
                    exclusive_throughput(&graph, kind, &device, &FillJobSpec::default_batch_sizes())
                        .map(|(t, _)| t)
                });
            let Some(throughput) = throughput else {
                continue;
            };
            let samples = ((cfg.backlog_job_gpu_hours * 3600.0 * throughput).round() as u64).max(1);
            let id = self.next_job_id;
            self.next_job_id += 1;
            let job = FillJobSpec::new(id, model, kind, samples);
            return Some(FillJobExecutor::new(job, plan));
        }
        None
    }

    /// Finds work for an idle stage: evicted jobs waiting in the
    /// scheduler take priority over fresh backlog draws.
    fn acquire_job(&mut self, stage: usize, now: SimTime) -> Option<StageJob> {
        let state = SystemState::idle(now, self.stages());
        if let Some(info) = self.scheduler.pick_for(stage, &state) {
            let job = self
                .evicted
                .remove(&info.id)
                .expect("scheduler queue and evicted map must stay in sync");
            return Some(job);
        }
        self.draw_job(stage).map(StageJob::fresh)
    }

    /// Evicts the fill job running on `stage` (device failed): work since
    /// the last checkpoint is lost, the executor rewinds, and the job
    /// re-enters the scheduler owing the restart cost.
    fn evict(&mut self, stage: usize) {
        let Some(mut job) = self.stage_jobs[stage].take() else {
            return;
        };
        self.evictions += 1;
        self.lost_flops += job.unsaved_flops;
        job.exec.restore(job.ckpt);
        job.unsaved_flops = 0.0;
        job.runs_since_ckpt = 0;
        job.restart_debt = self.cfg.checkpoint_cost;

        // Plans are stage-specific (bubble geometry and device differ),
        // so the job is only feasible back on its origin stage.
        let remaining = self.period * job.exec.remaining_main_iterations();
        let mut proc_times = vec![None; self.stages()];
        proc_times[stage] = Some(remaining);
        let info = JobInfo::new(job.exec.job().id, job.exec.job().arrival, proc_times);
        self.scheduler.requeue(info);
        self.evicted.insert(job.exec.job().id, job);
    }

    /// Critical-path aggregation of the in-flight iteration's fill
    /// stalls (shared with the physical backend).
    fn aggregate_delay(&self) -> SimDuration {
        critical_path_delay(&self.stage_delays)
    }

    /// Full behavioral state at an iteration boundary (see
    /// `PhysicalBackend::steady_sig` for the contract). On top of the
    /// shared rotation + executor state this fidelity adds its fault
    /// layer: device up flags, checkpoint-window progress and restart
    /// debt — everything that could make two boundaries diverge later.
    fn steady_sig(&self) -> Vec<u64> {
        let mut sig = Vec::with_capacity(3 + 11 * self.stages());
        sig_rotation(&self.rotation, &mut sig);
        sig.push(self.evicted.len() as u64);
        for (s, job) in self.stage_jobs.iter().enumerate() {
            sig.push(self.up[s] as u64);
            match job {
                None => sig_executor(None, &mut sig),
                Some(j) => {
                    sig_executor(Some(&j.exec), &mut sig);
                    sig.push(j.unsaved_flops.to_bits());
                    sig.push(j.runs_since_ckpt as u64);
                    sig.push(j.restart_debt.as_nanos());
                }
            }
        }
        sig
    }

    /// The detailed result. Only valid after the driver has run.
    ///
    /// # Panics
    ///
    /// Panics if the backend has not been drained yet.
    pub fn into_result(self) -> FaultSimResult {
        self.result
            .expect("backend not drained; drive it with BackendDriver::run")
    }
}

impl EventHandler for FaultBackend {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        match event {
            ClusterEvent::StageBubbles { stage } => {
                self.stage_delays.push(SimDuration::ZERO);
                for slot in 0..self.stage_windows[stage].len() {
                    self.on_bubble(now, stage, slot, queue);
                }
                if stage + 1 == self.stages() {
                    queue.push(
                        now + self.period + self.aggregate_delay(),
                        ClusterEvent::IterationEnd,
                    );
                }
            }
            ClusterEvent::IterationEnd => {
                let delay = self.aggregate_delay();
                self.total_delay += delay;
                self.stage_delays.clear();
                self.iterations_done += 1;
                if self.iterations_done < self.cfg.iterations {
                    // Steady-state fast-forward, exactly as in the
                    // physical backend — only armed with faults off, so
                    // the completed-id stream is the one extra accumulator
                    // to replay (ids advance by `draws` per cycle).
                    let mut next_at = now;
                    if self.detector.enabled() {
                        let counters = SteadyCounters {
                            completions: self.jobs_completed as u64,
                            draws: self.next_job_id,
                            aux: self.bubbles_lost,
                        };
                        if self
                            .detector
                            .observe(self.rng.state_fingerprint(), counters)
                        {
                            let sig = self.steady_sig();
                            let remaining = (self.cfg.iterations - self.iterations_done) as u64;
                            if let Some(skip) = self.detector.end_iteration(sig, delay, remaining) {
                                let stride = skip.counters.draws;
                                for m in 1..=skip.cycles {
                                    for rec in &skip.records {
                                        for &f in &rec.flops {
                                            self.executed_flops += f;
                                        }
                                        for &id in &rec.completed {
                                            self.completed_ids.push(JobId(id + m * stride));
                                        }
                                    }
                                }
                                self.total_delay += skip.delay_sum * skip.cycles;
                                self.iterations_done += skip.iterations() as usize;
                                self.jobs_completed +=
                                    (skip.counters.completions * skip.cycles) as usize;
                                self.next_job_id += skip.counters.draws * skip.cycles;
                                self.bubbles_lost += skip.counters.aux * skip.cycles;
                                // In-flight jobs were drawn a fixed number
                                // of cycles before they complete; their
                                // ids advance with the skipped draws so
                                // post-skip completions continue the
                                // event-fidelity id stream exactly.
                                for job in self.stage_jobs.iter_mut().flatten() {
                                    job.exec.advance_job_id(stride * skip.cycles);
                                }
                                self.fast_forwarded += skip.iterations();
                                queue.credit(skip.iterations() * (self.stages() as u64 + 1));
                                next_at =
                                    now + (self.period * skip.len + skip.delay_sum) * skip.cycles;
                            }
                        }
                    }
                    for stage in 0..self.stages() {
                        queue.push(next_at, ClusterEvent::StageBubbles { stage });
                    }
                }
            }
            ClusterEvent::DeviceFailure { device } => {
                // A failure landing after the last iteration has nothing
                // left to attack; dropping it (and its recovery) lets the
                // queue drain.
                if self.iterations_done >= self.cfg.iterations {
                    return;
                }
                debug_assert!(self.up[device], "failure on an already-down device");
                // Defensive: faults gate the detector off at construction,
                // but a failure is exactly the external transition that
                // voids a cycle hypothesis, so say so explicitly too.
                self.detector.reset();
                self.failures += 1;
                self.up[device] = false;
                self.evict(device);
                let outage = self.fail_rngs[device].exponential_duration(self.cfg.mean_recovery);
                self.downtime += outage;
                self.down_until[device] = now + outage;
                queue.push(now + outage, ClusterEvent::DeviceRecovery { device });
            }
            ClusterEvent::DeviceRecovery { device } => {
                self.up[device] = true;
                // Keep the failure process alive only while iterations
                // remain; otherwise the chain would outlive the run.
                if self.iterations_done < self.cfg.iterations {
                    let gap = self.fail_rngs[device].exponential_duration(self.cfg.mtbf);
                    if let Some(at) = now.checked_add(gap) {
                        queue.push(at, ClusterEvent::DeviceFailure { device });
                    }
                }
            }
            ClusterEvent::JobArrival(_)
            | ClusterEvent::JobCompletion { .. }
            | ClusterEvent::JobIterationEnd { .. } => {
                debug_assert!(false, "fault backend received a foreign event");
            }
        }
    }
}

impl SimBackend for FaultBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fault
    }

    fn prime(&mut self, sim: &mut Simulation<ClusterEvent>) {
        if !self.filling() {
            return;
        }
        for stage in 0..self.stages() {
            sim.schedule(SimTime::ZERO, ClusterEvent::StageBubbles { stage });
        }
        if self.cfg.mtbf != SimDuration::MAX {
            for stage in 0..self.stages() {
                let gap = self.fail_rngs[stage].exponential_duration(self.cfg.mtbf);
                if let Some(at) = SimTime::ZERO.checked_add(gap) {
                    sim.schedule(at, ClusterEvent::DeviceFailure { device: stage });
                }
            }
        }
    }

    fn on_bubble(
        &mut self,
        now: SimTime,
        stage: usize,
        slot: usize,
        _queue: &mut EventQueue<ClusterEvent>,
    ) {
        if !self.up[stage] {
            self.bubbles_lost += 1;
            return;
        }
        let window = self.stage_windows[stage][slot];
        if self.stage_jobs[stage].is_none() {
            self.stage_jobs[stage] = self.acquire_job(stage, now);
        }
        let cfg_jitter = self.cfg.jitter_cv;
        let usable_fraction = self.cfg.usable_fraction;
        let switch_overhead = self.cfg.executor.switch_overhead;
        let ckpt_every = self.cfg.checkpoint_every_bubbles;
        let Some(job) = self.stage_jobs[stage].as_mut() else {
            return;
        };
        // A revived job reloads its checkpoint before any new work: the
        // restart debt consumes whole bubbles (no stall — the reload fits
        // inside the usable span it displaces).
        if !job.restart_debt.is_zero() {
            let usable = window.duration.mul_f64(usable_fraction);
            job.restart_debt = job.restart_debt.saturating_sub(usable);
            return;
        }
        let run = job.exec.on_bubble(slot);
        if run.time_used.is_zero() && run.samples_completed == 0 && !run.job_finished {
            return;
        }
        job.unsaved_flops += run.flops;
        job.runs_since_ckpt += 1;
        let finished = run.job_finished;
        let finished_id = job.exec.job().id;
        if !finished && job.runs_since_ckpt >= ckpt_every {
            job.ckpt = job.exec.checkpoint();
            job.unsaved_flops = 0.0;
            job.runs_since_ckpt = 0;
        }
        self.executed_flops += run.flops;
        self.detector.record_flops(run.flops);
        // Jittered reality, identical to the physical backend: bubble and
        // partition both deviate from their profiled durations.
        let actual_window = window.duration.mul_f64(self.rng.jitter(cfg_jitter));
        let used = switch_overhead + run.time_used.mul_f64(self.rng.jitter(cfg_jitter));
        let usable = actual_window.mul_f64(usable_fraction);
        let delay = used.saturating_sub(usable);
        if self.stage_delays.is_empty() {
            self.stage_delays.push(SimDuration::ZERO);
        }
        *self
            .stage_delays
            .last_mut()
            .expect("just ensured non-empty") += delay;
        if finished {
            self.jobs_completed += 1;
            self.completed_ids.push(finished_id);
            self.detector.record_completion(finished_id.0);
            self.stage_jobs[stage] = None;
        }
    }

    fn drain(&mut self, _now: SimTime) {
        let p = self.stages();
        let iterations = self.cfg.iterations;
        let nominal_total = self.period * iterations as u64;
        let elapsed = nominal_total + self.total_delay;
        // An outage in flight when the run ends only counts up to the
        // final iteration boundary: downtime must never exceed the span
        // the run actually observed. Only the last outage per device can
        // overhang (later failures are dropped by the post-run guard).
        let run_end = SimTime::ZERO + elapsed;
        for &until in &self.down_until {
            self.downtime = self
                .downtime
                .saturating_sub(until.saturating_since(run_end));
        }
        let slowdown = if iterations == 0 {
            0.0
        } else {
            self.total_delay.as_secs_f64() / nominal_total.as_secs_f64()
        };
        let surviving = (self.executed_flops - self.lost_flops).max(0.0);
        self.result = Some(FaultSimResult {
            iterations,
            nominal_period: self.period,
            mean_period: if iterations == 0 {
                self.period
            } else {
                self.period + self.total_delay / iterations as u64
            },
            main_slowdown: slowdown,
            fill_flops: surviving,
            lost_fill_flops: self.lost_flops,
            recovered_tflops_per_gpu: if surviving == 0.0 {
                0.0
            } else {
                surviving / (p as f64 * elapsed.as_secs_f64()) / 1e12
            },
            main_tflops_per_gpu: self.main_nominal / (1.0 + slowdown),
            jobs_completed: self.jobs_completed,
            completed_job_ids: std::mem::take(&mut self.completed_ids),
            failures: self.failures,
            evictions: self.evictions,
            bubbles_lost: self.bubbles_lost,
            downtime: self.downtime,
            goodput_fraction: BackendMetrics::goodput_of(surviving, self.lost_flops),
            iterations_fast_forwarded: self.fast_forwarded,
        });
    }

    fn metrics(&self, events_dispatched: u64) -> BackendMetrics {
        let result = self
            .result
            .as_ref()
            .expect("metrics requested before drain");
        let elapsed = self.period * result.iterations as u64 + self.total_delay;
        BackendMetrics {
            kind: BackendKind::Fault,
            num_devices: self.stages(),
            elapsed,
            events_dispatched,
            fill_flops: result.fill_flops,
            recovered_tflops_per_gpu: result.recovered_tflops_per_gpu,
            main_tflops_per_gpu: result.main_tflops_per_gpu,
            main_slowdown: result.main_slowdown,
            bubble_ratio: self.bubble_ratio,
            jobs_completed: result.jobs_completed,
            evictions: result.evictions,
            lost_fill_flops: result.lost_fill_flops,
            goodput_fraction: result.goodput_fraction,
        }
    }
}

/// The heterogeneous + fault simulator: the convenience entry point
/// wrapping [`FaultBackend`] in a [`BackendDriver`]. See module docs.
#[derive(Debug)]
pub struct FaultSim {
    config: FaultSimConfig,
}

impl FaultSim {
    /// Creates a simulator.
    pub fn new(config: FaultSimConfig) -> Self {
        FaultSim { config }
    }

    /// Runs the simulation on the shared event kernel.
    pub fn run(&self) -> FaultSimResult {
        let (_, backend) = BackendDriver::new(FaultBackend::new(self.config.clone())).run();
        backend.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{PhysicalSim, PhysicalSimConfig};
    use pipefill_pipeline::ScheduleKind;

    fn config(fill: f64) -> FaultSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = FaultSimConfig::new(main).with_fill_fraction(fill);
        cfg.iterations = 120;
        cfg
    }

    fn physical_config(fill: f64) -> PhysicalSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(fill);
        cfg.iterations = 120;
        cfg
    }

    #[test]
    fn no_faults_homogeneous_matches_physical_exactly() {
        // The headline conformance property: with faults off and a
        // homogeneous device list, every randomness-consuming code path
        // is identical to the physical backend's.
        let fault = FaultSim::new(config(0.68)).run();
        let phys = PhysicalSim::new(physical_config(0.68)).run();
        assert_eq!(fault.fill_flops, phys.fill_flops);
        assert_eq!(
            fault.recovered_tflops_per_gpu,
            phys.recovered_tflops_per_gpu
        );
        assert_eq!(fault.main_slowdown, phys.main_slowdown);
        assert_eq!(fault.jobs_completed, phys.jobs_completed);
        assert_eq!(fault.evictions, 0);
        assert_eq!(fault.failures, 0);
        assert_eq!(fault.lost_fill_flops, 0.0);
        assert_eq!(fault.goodput_fraction, 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut cfg = config(0.68).with_mtbf(SimDuration::from_secs(600));
        cfg.seed = 11;
        let a = FaultSim::new(cfg.clone()).run();
        let b = FaultSim::new(cfg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn failures_cause_evictions_and_lost_work() {
        let cfg = config(0.68).with_mtbf(SimDuration::from_secs(300));
        let r = FaultSim::new(cfg).run();
        assert!(r.failures > 0, "no failures at a 5-minute MTBF");
        assert!(r.evictions > 0, "failures never evicted a job");
        assert!(r.lost_fill_flops > 0.0);
        assert!(r.goodput_fraction < 1.0);
        assert!(r.downtime > SimDuration::ZERO);
        assert!(r.bubbles_lost > 0, "down stages must lose bubbles");
        // Goodput is consistent with the flops split.
        let expect = r.fill_flops / (r.fill_flops + r.lost_fill_flops);
        assert!((r.goodput_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn faults_reduce_recovered_throughput() {
        let clean = FaultSim::new(config(0.68)).run();
        let faulty = FaultSim::new(config(0.68).with_mtbf(SimDuration::from_secs(300))).run();
        assert!(
            faulty.recovered_tflops_per_gpu < clean.recovered_tflops_per_gpu,
            "faulty {} vs clean {}",
            faulty.recovered_tflops_per_gpu,
            clean.recovered_tflops_per_gpu
        );
    }

    #[test]
    fn evicted_jobs_complete_at_most_once() {
        let cfg = config(0.68).with_mtbf(SimDuration::from_secs(200));
        let r = FaultSim::new(cfg).run();
        assert!(r.evictions > 0);
        let mut ids = r.completed_job_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            r.completed_job_ids.len(),
            "a job completed twice"
        );
        assert_eq!(r.completed_job_ids.len(), r.jobs_completed);
    }

    #[test]
    fn heterogeneous_pipeline_stretches_to_the_pacing_stage() {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let p = main.engine_timeline().stages.len();
        // One stage on a slower "GPU" (half the baseline peak): the
        // period must stretch by 2×.
        let mut slowpoke = main.device.clone();
        slowpoke.peak_tflops /= 2.0;
        slowpoke.name = "V50".into();
        let mut devices = vec![main.device.clone(); p];
        devices[p / 2] = slowpoke;
        let mut cfg = FaultSimConfig::heterogeneous(main.clone(), devices);
        cfg.iterations = 60;
        let het = FaultSim::new(cfg).run();

        let mut homo_cfg = FaultSimConfig::new(main);
        homo_cfg.iterations = 60;
        let homo = FaultSim::new(homo_cfg).run();

        let ratio = het.nominal_period.as_secs_f64() / homo.nominal_period.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9, "period ratio {ratio}");
        // The pacing stage halves the main job's per-GPU rate…
        assert!(het.main_tflops_per_gpu < homo.main_tflops_per_gpu * 0.6);
        // …while every non-pacing stage gains bubble span, so recovered
        // fill throughput per iteration-second goes *up*.
        assert!(
            het.recovered_tflops_per_gpu > homo.recovered_tflops_per_gpu,
            "het {} vs homo {}",
            het.recovered_tflops_per_gpu,
            homo.recovered_tflops_per_gpu
        );
    }

    #[test]
    fn faster_heterogeneous_devices_recover_more() {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let p = main.engine_timeline().stages.len();
        // Half the stages upgraded to A100s: same pacing (V100 stages
        // remain), faster fill execution on the upgraded stages.
        let mut devices = vec![main.device.clone(); p];
        for d in devices.iter_mut().take(p / 2) {
            *d = DeviceSpec::a100_40g();
        }
        let mut cfg = FaultSimConfig::heterogeneous(main.clone(), devices);
        cfg.iterations = 60;
        let upgraded = FaultSim::new(cfg).run();

        let mut homo_cfg = FaultSimConfig::new(main);
        homo_cfg.iterations = 60;
        let homo = FaultSim::new(homo_cfg).run();

        assert_eq!(upgraded.nominal_period, homo.nominal_period);
        assert!(
            upgraded.recovered_tflops_per_gpu > homo.recovered_tflops_per_gpu,
            "upgraded {} vs homo {}",
            upgraded.recovered_tflops_per_gpu,
            homo.recovered_tflops_per_gpu
        );
    }

    #[test]
    fn no_fill_baseline_is_inert() {
        let r = FaultSim::new(config(0.0).with_mtbf(SimDuration::from_secs(60))).run();
        assert_eq!(r.main_slowdown, 0.0);
        assert_eq!(r.recovered_tflops_per_gpu, 0.0);
        assert_eq!(r.failures, 0, "failure chain must not outlive filling");
    }

    #[test]
    fn fast_forward_matches_event_fidelity_bit_for_bit() {
        // Quiescent config (no jitter draws, deterministic mix, small
        // jobs so the executor cycle recurs quickly): fast-forward must
        // fire, and the results must match the event-by-event run down
        // to the last bit — including the completed-id stream, whose
        // replay shifts ids by the per-cycle draw stride.
        let mut on = config(0.68);
        on.jitter_cv = 0.0;
        on.deterministic_mix = true;
        on.mix = ModelMix::single(pipefill_model_zoo::ModelId::EfficientNet);
        on.backlog_job_gpu_hours = 0.002;
        on.iterations = 400;
        let mut off = on.clone();
        off.fast_forward = false;
        let mut r_on = FaultSim::new(on).run();
        let r_off = FaultSim::new(off).run();
        assert!(
            r_on.iterations_fast_forwarded > 0,
            "steady state never detected"
        );
        assert_eq!(r_off.iterations_fast_forwarded, 0);
        assert_eq!(r_on.fill_flops.to_bits(), r_off.fill_flops.to_bits());
        r_on.iterations_fast_forwarded = 0;
        assert_eq!(r_on, r_off);
    }

    #[test]
    fn heterogeneous_quiescent_runs_fast_forward_too() {
        // Heterogeneity reshapes bubble geometry but consumes no extra
        // randomness, so a quiescent heterogeneous pipeline cycles and
        // fast-forwards just like a homogeneous one.
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let p = main.engine_timeline().stages.len();
        let mut devices = vec![main.device.clone(); p];
        for d in devices.iter_mut().take(p / 2) {
            *d = DeviceSpec::a100_40g();
        }
        let mut cfg = FaultSimConfig::heterogeneous(main, devices).with_fill_fraction(0.68);
        cfg.jitter_cv = 0.0;
        cfg.deterministic_mix = true;
        cfg.mix = ModelMix::single(pipefill_model_zoo::ModelId::EfficientNet);
        cfg.backlog_job_gpu_hours = 0.001;
        cfg.iterations = 800;
        let mut off = cfg.clone();
        off.fast_forward = false;
        let mut r_on = FaultSim::new(cfg).run();
        let r_off = FaultSim::new(off).run();
        assert!(r_on.iterations_fast_forwarded > 0);
        r_on.iterations_fast_forwarded = 0;
        assert_eq!(r_on, r_off);
    }

    #[test]
    fn faulty_runs_never_fast_forward() {
        let mut cfg = config(0.68).with_mtbf(SimDuration::from_secs(300));
        cfg.jitter_cv = 0.0;
        cfg.deterministic_mix = true;
        let r = FaultSim::new(cfg).run();
        assert_eq!(
            r.iterations_fast_forwarded, 0,
            "fault injection must gate fast-forward off"
        );
    }

    #[test]
    #[should_panic(expected = "stage_devices must cover every pipeline stage")]
    fn wrong_device_count_is_rejected() {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let cfg = FaultSimConfig::heterogeneous(main, vec![DeviceSpec::v100(); 3]);
        let _ = FaultBackend::new(cfg);
    }
}
