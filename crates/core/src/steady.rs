//! Steady-state (saturated-backlog) fill-job rates, computed directly
//! from execution plans.
//!
//! When the fill-job queue never empties — the regime of the utilization
//! figures — each device cycles through its plan indefinitely, so the
//! recovered rate is a property of the plan itself: FLOPs per pass over
//! the main-job iterations the pass spans. The event-driven [`crate::ClusterSim`]
//! converges to these rates at saturation (asserted in the integration
//! tests), exactly as the paper's arrival/completion simulator replays
//! profiled patterns between events.

use pipefill_executor::{plan_best, ExecutionPlan, ExecutorConfig, FillJobSpec};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::MainJobSpec;
use pipefill_trace::ModelMix;

/// Per-stage steady rates for one job type.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyRate {
    /// Model executed.
    pub model: ModelId,
    /// Training or batch inference.
    pub kind: JobKind,
    /// Recovered TFLOPS per GPU, averaged over stages (0 where
    /// infeasible).
    pub recovered_tflops: f64,
    /// TFLOPS while actually executing in bubbles (the Fig. 7a metric),
    /// averaged over stages with feasible plans.
    pub tflops_during_execution: f64,
    /// Samples per second of wall-clock time, averaged over stages.
    pub wall_throughput: f64,
    /// Stages (out of `p`) where at least one configuration fits.
    pub feasible_stages: usize,
}

/// Builds the best plan for `(model, kind)` on every stage of the main
/// job; `None` where no configuration fits that stage's bubbles.
pub fn stage_plans(
    main: &MainJobSpec,
    exec: &ExecutorConfig,
    model: ModelId,
    kind: JobKind,
) -> Vec<Option<ExecutionPlan>> {
    let timeline = main.engine_timeline();
    // A large nominal job; plans depend only on model/kind/bubbles.
    let job = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
    timeline
        .stages
        .iter()
        .map(|stage| {
            let slots: Vec<_> = stage
                .fillable_windows()
                .iter()
                .map(|w| (w.duration, w.free_memory))
                .collect();
            if slots.is_empty() {
                return None;
            }
            plan_best(&job, &slots, &main.device, exec).ok()
        })
        .collect()
}

/// Steady rates of one `(model, kind)` pair across the main job's stages.
pub fn steady_rate(
    main: &MainJobSpec,
    exec: &ExecutorConfig,
    model: ModelId,
    kind: JobKind,
) -> SteadyRate {
    let timeline = main.engine_timeline();
    let period = timeline.period.as_secs_f64();
    let plans = stage_plans(main, exec, model, kind);
    let p = plans.len();

    let mut recovered_sum = 0.0;
    let mut exec_tflops_sum = 0.0;
    let mut wall_sum = 0.0;
    let mut feasible = 0usize;
    for plan in plans.iter().flatten() {
        let pass_secs = plan.main_iterations_per_pass as f64 * period;
        recovered_sum += plan.flops_per_pass / pass_secs / 1e12;
        let busy = plan.busy_time_per_pass.as_secs_f64();
        if busy > 0.0 {
            exec_tflops_sum += plan.flops_per_pass / busy / 1e12;
        }
        wall_sum += plan.samples_per_pass as f64 / pass_secs;
        feasible += 1;
    }
    SteadyRate {
        model,
        kind,
        // Recovered utilization averages over ALL stages (infeasible
        // stages recover nothing).
        recovered_tflops: recovered_sum / p as f64,
        // Execution-time TFLOPS averages over stages that actually run.
        tflops_during_execution: if feasible == 0 {
            0.0
        } else {
            exec_tflops_sum / feasible as f64
        },
        wall_throughput: if feasible == 0 {
            0.0
        } else {
            wall_sum / feasible as f64
        },
        feasible_stages: feasible,
    }
}

/// Mix-weighted recovered TFLOPS per GPU under a saturated backlog: the
/// "simulator prediction" used in the Fig. 6 validation and the
/// PipeFill series of Figs. 1/4c.
///
/// Job kinds follow the §5.3 rule: sub-700M models are half training and
/// half batch inference (by job *count*); larger models are batch
/// inference only. Because the trace sizes jobs in GPU-hours, a device's
/// wall-time share of each job type is proportional to `count ×
/// exclusive_throughput / wall_throughput` — slow-in-bubbles types occupy
/// more of the timeline — so rates are combined with time-share weights,
/// per stage, exactly as a saturated device would realize them.
pub fn steady_recovered_tflops(main: &MainJobSpec, exec: &ExecutorConfig, mix: &ModelMix) -> f64 {
    // Expand mix into (model, kind, count-weight) job types.
    let mut types: Vec<(ModelId, JobKind, f64)> = Vec::new();
    for &(model, weight) in mix.weights() {
        if weight == 0.0 {
            continue;
        }
        if model.trainable_as_fill_job() {
            types.push((model, JobKind::Training, weight * 0.5));
            types.push((model, JobKind::BatchInference, weight * 0.5));
        } else {
            types.push((model, JobKind::BatchInference, weight));
        }
    }

    let timeline = main.engine_timeline();
    let period = timeline.period.as_secs_f64();
    let device = &main.device;
    let batches = FillJobSpec::default_batch_sizes();

    // Exclusive throughput per job type (samples/sec on an idle GPU).
    let exclusive: Vec<Option<f64>> = types
        .iter()
        .map(|&(model, kind, _)| {
            let graph = model.build();
            pipefill_executor::exclusive_throughput(&graph, kind, device, &batches).map(|(t, _)| t)
        })
        .collect();

    let mut total = 0.0;
    for stage in &timeline.stages {
        let slots: Vec<_> = stage
            .fillable_windows()
            .iter()
            .map(|w| (w.duration, w.free_memory))
            .collect();
        if slots.is_empty() {
            continue; // this stage recovers nothing
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &(model, kind, count_w)) in types.iter().enumerate() {
            let Some(excl) = exclusive[i] else { continue };
            let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
            let Ok(plan) = plan_best(&probe, &slots, device, exec) else {
                continue;
            };
            let pass_secs = plan.main_iterations_per_pass as f64 * period;
            let rate = plan.flops_per_pass / pass_secs / 1e12;
            let wall_tput = plan.samples_per_pass as f64 / pass_secs;
            if wall_tput == 0.0 {
                continue;
            }
            // Equal GPU-hour jobs: wall time ∝ samples/wall_tput with
            // samples ∝ exclusive throughput.
            let time_w = count_w * excl / wall_tput;
            num += time_w * rate;
            den += time_w;
        }
        if den > 0.0 {
            total += num / den;
        }
    }
    total / timeline.stages.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    fn main_8k() -> MainJobSpec {
        MainJobSpec::simulator_40b(8, ScheduleKind::GPipe)
    }

    #[test]
    fn bert_inference_is_feasible_on_all_stages() {
        let plans = stage_plans(
            &main_8k(),
            &ExecutorConfig::default(),
            ModelId::BertBase,
            JobKind::BatchInference,
        );
        assert_eq!(plans.len(), 16);
        let feasible = plans.iter().flatten().count();
        assert!(feasible >= 15, "feasible on {feasible}/16 stages");
    }

    #[test]
    fn bert_inference_recovers_meaningful_tflops_at_8k() {
        // The paper's best-case workload recovers ≈10+ TFLOPS/GPU at the
        // 65% bubble ratio (Fig. 4c: +63% over ≈20 TFLOPS traditional).
        let r = steady_rate(
            &main_8k(),
            &ExecutorConfig::default(),
            ModelId::BertBase,
            JobKind::BatchInference,
        );
        assert!(
            r.recovered_tflops > 6.0 && r.recovered_tflops < 25.0,
            "recovered {}",
            r.recovered_tflops
        );
        assert!(r.tflops_during_execution > r.recovered_tflops);
    }

    #[test]
    fn inference_beats_training_for_bert() {
        // Fig. 7a: "batch inference jobs are able to reach higher FLOPS
        // utilization than training jobs".
        let exec = ExecutorConfig::default();
        let main = main_8k();
        let inf = steady_rate(&main, &exec, ModelId::BertBase, JobKind::BatchInference);
        let tr = steady_rate(&main, &exec, ModelId::BertBase, JobKind::Training);
        assert!(
            inf.tflops_during_execution > tr.tflops_during_execution,
            "inf {} vs train {}",
            inf.tflops_during_execution,
            tr.tflops_during_execution
        );
    }

    #[test]
    fn trace_mix_recovers_less_than_bert_only() {
        // Fig. 4c: the BERT-inference-only series dominates the trace mix.
        let exec = ExecutorConfig::default();
        let main = main_8k();
        let mix = steady_recovered_tflops(&main, &exec, &ModelMix::paper_mix());
        let bert = steady_recovered_tflops(&main, &exec, &ModelMix::single(ModelId::BertBase));
        assert!(mix > 0.0);
        assert!(bert > mix, "bert {bert} vs mix {mix}");
    }

    #[test]
    fn higher_fill_fraction_recovers_more() {
        let main = main_8k();
        let lo = steady_recovered_tflops(
            &main,
            &ExecutorConfig::default().with_fill_fraction(0.4),
            &ModelMix::single(ModelId::BertBase),
        );
        let hi = steady_recovered_tflops(
            &main,
            &ExecutorConfig::default().with_fill_fraction(0.8),
            &ModelMix::single(ModelId::BertBase),
        );
        assert!(hi > lo * 1.5, "lo={lo} hi={hi}");
    }
}
