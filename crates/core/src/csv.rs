//! A minimal CSV writer (serde_json is not in the allowed dependency
//! set; experiment results are flat tables anyway).

use std::fmt::Display;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Writes experiment rows as CSV under a target directory.
///
/// # Example
///
/// ```no_run
/// use pipefill_core::CsvWriter;
///
/// let mut w = CsvWriter::create("target/experiments/fig4.csv", &["gpus", "days"]).unwrap();
/// w.row(&[&1024usize, &81.6f64]).unwrap();
/// w.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct CsvWriter {
    out: BufWriter<File>,
    columns: usize,
    path: PathBuf,
}

impl CsvWriter {
    /// Creates the file (and parent directories) and writes the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create<P: AsRef<Path>>(path: P, header: &[&str]) -> std::io::Result<CsvWriter> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = BufWriter::new(File::create(&path)?);
        writeln!(out, "{}", header.join(","))?;
        Ok(CsvWriter {
            out,
            columns: header.len(),
            path,
        })
    }

    /// Writes one row.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header; debug-panics if a
    /// value renders as a non-finite float (`NaN`/`inf`), which would
    /// otherwise land silently in the CSV and poison every downstream
    /// plot and golden diff.
    pub fn row(&mut self, values: &[&dyn Display]) -> std::io::Result<()> {
        assert_eq!(
            values.len(),
            self.columns,
            "row arity mismatch in {}",
            self.path.display()
        );
        let mut first = true;
        for v in values {
            if !first {
                write!(self.out, ",")?;
            }
            let rendered = v.to_string();
            debug_assert!(
                !matches!(rendered.as_str(), "NaN" | "inf" | "-inf"),
                "non-finite value '{rendered}' written to {}",
                self.path.display()
            );
            write!(self.out, "{rendered}")?;
            first = false;
        }
        writeln!(self.out)
    }

    /// Flushes and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn finish(mut self) -> std::io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

/// Default experiment-output directory (`target/experiments`).
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let dir = std::env::temp_dir().join(format!("pipefill-csv-{}", std::process::id()));
        let path = dir.join("t.csv");
        let mut w = CsvWriter::create(&path, &["a", "b"]).unwrap();
        w.row(&[&1, &2.5]).unwrap();
        w.row(&[&"x", &"y"]).unwrap();
        let p = w.finish().unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2.5\nx,y\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let dir = std::env::temp_dir().join(format!("pipefill-csv2-{}", std::process::id()));
        let mut w = CsvWriter::create(dir.join("t.csv"), &["a", "b"]).unwrap();
        let _ = w.row(&[&1]);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-finite value"))]
    fn non_finite_floats_are_flagged() {
        let dir = std::env::temp_dir().join(format!("pipefill-csv3-{}", std::process::id()));
        let mut w = CsvWriter::create(dir.join("t.csv"), &["a", "b"]).unwrap();
        let _ = w.row(&[&f64::NAN, &f64::INFINITY]);
        // Release builds write the row; the debug assertion is the guard
        // the simulation backends run under in CI.
        std::fs::remove_dir_all(dir).ok();
    }
}
