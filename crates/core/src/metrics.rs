//! Cluster-level metrics: utilization breakdowns, job-completion-time
//! statistics, and the paper's GPUs-saved estimate.

use pipefill_sim_core::stats::Summary;
use serde::{Deserialize, Serialize};

/// TFLOPS-per-GPU decomposition (the Fig. 1 / Fig. 4c series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationBreakdown {
    /// Main-job TFLOPS per GPU averaged over the iteration.
    pub main_tflops: f64,
    /// Fill-job TFLOPS per GPU recovered from bubbles.
    pub recovered_tflops: f64,
}

impl UtilizationBreakdown {
    /// Aggregate utilization (main + fill).
    pub fn total(&self) -> f64 {
        self.main_tflops + self.recovered_tflops
    }

    /// Relative utilization gain over traditional PP
    /// (`recovered / main`).
    pub fn relative_gain(&self) -> f64 {
        if self.main_tflops == 0.0 {
            0.0
        } else {
            self.recovered_tflops / self.main_tflops
        }
    }
}

/// Job-completion-time statistics (Fig. 9a's metric).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct JctStats {
    /// Completed jobs.
    pub count: usize,
    /// Mean JCT in seconds.
    pub mean_secs: f64,
    /// Median JCT in seconds.
    pub median_secs: f64,
    /// 95th-percentile JCT in seconds.
    pub p95_secs: f64,
    /// Worst JCT in seconds.
    pub max_secs: f64,
}

impl JctStats {
    /// Summarizes a list of per-job completion times (seconds).
    pub fn from_secs(jcts: &[f64]) -> JctStats {
        match Summary::from_slice(jcts) {
            None => JctStats::default(),
            Some(s) => JctStats {
                count: s.count,
                mean_secs: s.mean,
                median_secs: s.median,
                p95_secs: s.p95,
                max_secs: s.max,
            },
        }
    }
}

/// The paper's closed-form estimate (§6.2): "for a main job using C GPUs
/// with a bubble ratio of B and fill-job relative performance of P, we
/// can approximate the GPUs saved by filling as C·B·P".
///
/// # Example
///
/// ```
/// use pipefill_core::gpus_saved;
///
/// // The paper's 8K-GPU trace-mix case: ≈1500+ GPUs saved.
/// let saved = gpus_saved(8192, 0.652, 0.3);
/// assert!(saved > 1500.0 && saved < 1700.0);
/// // Best case with bubble-efficient jobs: ≈2600.
/// let best = gpus_saved(8192, 0.652, 0.5);
/// assert!((best - 2670.0).abs() < 20.0);
/// ```
///
/// # Panics
///
/// Panics if `bubble_ratio` or `relative_perf` is outside `[0, 1]`.
pub fn gpus_saved(cluster_gpus: usize, bubble_ratio: f64, relative_perf: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&bubble_ratio),
        "bubble ratio must be in [0, 1], got {bubble_ratio}"
    );
    assert!(
        (0.0..=1.0).contains(&relative_perf),
        "relative performance must be in [0, 1], got {relative_perf}"
    );
    cluster_gpus as f64 * bubble_ratio * relative_perf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let u = UtilizationBreakdown {
            main_tflops: 20.0,
            recovered_tflops: 12.6,
        };
        assert!((u.total() - 32.6).abs() < 1e-12);
        assert!((u.relative_gain() - 0.63).abs() < 1e-12);
    }

    #[test]
    fn zero_main_is_benign() {
        let u = UtilizationBreakdown {
            main_tflops: 0.0,
            recovered_tflops: 5.0,
        };
        assert_eq!(u.relative_gain(), 0.0);
    }

    #[test]
    fn jct_stats_from_sample() {
        let s = JctStats::from_secs(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean_secs, 25.0);
        assert_eq!(s.median_secs, 25.0);
        assert_eq!(s.max_secs, 40.0);
        assert_eq!(JctStats::from_secs(&[]).count, 0);
    }

    #[test]
    #[should_panic(expected = "bubble ratio")]
    fn bad_bubble_ratio_rejected() {
        let _ = gpus_saved(100, 1.5, 0.3);
    }
}
