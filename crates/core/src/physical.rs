//! The fine-grained "physical cluster" simulator.
//!
//! Stand-in for the paper's 16-GPU testbed runs (§5.1, §6.1): where the
//! coarse simulator replays plans between arrival/completion events, this
//! one executes *every bubble of every iteration* with multiplicative
//! timing jitter, explicit context-switch costs, and an engine-slack
//! floor inside each bubble. Main-job slowdown is therefore an emergent
//! measurement: whenever a fill partition (plus switch cost) overruns the
//! jittered bubble's usable span, the pipeline stalls and the iteration
//! stretches — which is exactly the failure mode the paper's 68%
//! fill-fraction cap exists to avoid (Fig. 5).
//!
//! Because this models the same plans through an independent mechanism,
//! comparing its recovered FLOPS against the coarse simulator reproduces
//! the paper's simulator-validation experiment (Fig. 6, error <2%).

use std::collections::HashMap;

use pipefill_executor::{
    exclusive_throughput, plan_best, ExecutionPlan, ExecutorConfig, FillJobExecutor, FillJobSpec,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::MainJobSpec;
use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::SimDuration;
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

/// Fine-grained simulation parameters.
#[derive(Debug, Clone)]
pub struct PhysicalSimConfig {
    /// The main job (defaults target the paper's 5B/16-GPU setup).
    pub main_job: MainJobSpec,
    /// Executor tuning; `fill_fraction` is the Fig. 5 sweep axis. A fill
    /// fraction of exactly `0.0` disables filling (the baseline run).
    pub executor: ExecutorConfig,
    /// Fill-job model mix (devices draw from an infinite backlog).
    pub mix: ModelMix,
    /// Main-job iterations to simulate.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Coefficient of variation of the multiplicative timing jitter
    /// applied to bubble windows and fill partitions.
    pub jitter_cv: f64,
    /// Fraction of each (jittered) bubble actually usable before the
    /// engine needs the device back (receive setup, allocator work).
    pub usable_fraction: f64,
    /// Size of each backlog job in GPU-hours.
    pub backlog_job_gpu_hours: f64,
    /// Draw backlog jobs by weighted round-robin instead of random
    /// sampling. Used by the simulator-validation experiment (Fig. 6) so
    /// the physical run realizes the mix weights exactly rather than up
    /// to sampling noise.
    pub deterministic_mix: bool,
    /// Failure injection: coefficient of variation of the *actual* free
    /// memory relative to the profiled value (0 disables). When a
    /// partition's memory request exceeds the jittered free memory, the
    /// allocation hits the per-process cap: the fill attempt dies with an
    /// OOM isolated to the Executor (§4.3) and the bubble goes idle —
    /// the main job is never affected.
    pub memory_jitter_cv: f64,
}

impl PhysicalSimConfig {
    /// Defaults matching the paper's physical experiments: the 5B main
    /// job, trace mix, 10% jitter, 82% usable bubble span.
    pub fn new(main_job: MainJobSpec) -> Self {
        PhysicalSimConfig {
            main_job,
            executor: ExecutorConfig::default(),
            mix: ModelMix::paper_mix(),
            iterations: 200,
            seed: 7,
            jitter_cv: 0.08,
            usable_fraction: 0.88,
            backlog_job_gpu_hours: 0.02,
            deterministic_mix: false,
            memory_jitter_cv: 0.0,
        }
    }

    /// Sets the fill fraction (Fig. 5 sweep).
    pub fn with_fill_fraction(mut self, f: f64) -> Self {
        if f == 0.0 {
            self.executor.fill_fraction = 0.0; // sentinel: no filling
        } else {
            self.executor = self.executor.with_fill_fraction(f);
        }
        self
    }

    /// Sets the model mix (Fig. 6 sweep).
    pub fn with_mix(mut self, mix: ModelMix) -> Self {
        self.mix = mix;
        self
    }
}

/// Fine-grained simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalSimResult {
    /// Iterations simulated.
    pub iterations: usize,
    /// Undisturbed iteration period.
    pub nominal_period: SimDuration,
    /// Mean iteration period including fill-induced stalls.
    pub mean_period: SimDuration,
    /// Main-job slowdown caused by filling: `(mean − nominal)/nominal`.
    pub main_slowdown: f64,
    /// Fill FLOPs executed.
    pub fill_flops: f64,
    /// Fill TFLOPS per GPU over the (stretched) run.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU (slowdown-adjusted).
    pub main_tflops_per_gpu: f64,
    /// Fill jobs completed.
    pub jobs_completed: usize,
    /// Fill-job OOMs isolated by the memory cap (only non-zero under
    /// memory-jitter failure injection).
    pub isolated_ooms: u64,
}

impl PhysicalSimResult {
    /// Aggregate TFLOPS per GPU.
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

/// The fine-grained simulator. See module docs.
#[derive(Debug)]
pub struct PhysicalSim {
    config: PhysicalSimConfig,
}

impl PhysicalSim {
    /// Creates a simulator.
    pub fn new(config: PhysicalSimConfig) -> Self {
        PhysicalSim { config }
    }

    /// Runs the simulation.
    pub fn run(&self) -> PhysicalSimResult {
        let cfg = &self.config;
        let timeline = cfg.main_job.engine_timeline();
        let period = timeline.period;
        let main_nominal = cfg.main_job.main_job_tflops_per_gpu(&timeline);
        let p = timeline.stages.len();

        if cfg.executor.fill_fraction == 0.0 {
            return PhysicalSimResult {
                iterations: cfg.iterations,
                nominal_period: period,
                mean_period: period,
                main_slowdown: 0.0,
                fill_flops: 0.0,
                recovered_tflops_per_gpu: 0.0,
                main_tflops_per_gpu: main_nominal,
                jobs_completed: 0,
                isolated_ooms: 0,
            };
        }

        let device = &cfg.main_job.device;
        let mut rng = DeterministicRng::seed_from(cfg.seed);
        let mut plan_cache: HashMap<(ModelId, JobKind, usize), Option<ExecutionPlan>> =
            HashMap::new();
        let mut tput_cache: HashMap<(ModelId, JobKind), Option<f64>> = HashMap::new();

        let stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>> = timeline
            .stages
            .iter()
            .map(|s| {
                s.fillable_windows()
                    .iter()
                    .map(|w| (w.duration, w.free_memory))
                    .collect()
            })
            .collect();

        let mut executors: Vec<Option<FillJobExecutor>> = (0..p).map(|_| None).collect();
        let mut rotation = cfg.deterministic_mix.then(|| MixRotation::new(&cfg.mix));
        let mut next_job_id = 0u64;
        let mut total_delay = SimDuration::ZERO;
        let mut fill_flops = 0.0;
        let mut jobs_completed = 0usize;
        let mut isolated_ooms = 0u64;

        for _iter in 0..cfg.iterations {
            let mut stage_delays: Vec<SimDuration> = Vec::with_capacity(p);
            for stage in 0..p {
                let mut delay = SimDuration::ZERO;
                let windows = timeline.stages[stage].fillable_windows();
                for (slot, window) in windows.iter().enumerate() {
                    // Refill the device's backlog if idle.
                    if executors[stage].is_none() {
                        executors[stage] = draw_job(
                            cfg,
                            stage,
                            &stage_slots,
                            device,
                            &mut plan_cache,
                            &mut tput_cache,
                            &mut next_job_id,
                            &mut rng,
                            rotation.as_mut(),
                        );
                    }
                    let Some(executor) = executors[stage].as_mut() else {
                        continue;
                    };
                    // Failure injection: the engine capped the Executor at
                    // the profiled free memory, but the *actual* free
                    // memory this bubble may be less. A request over the
                    // cap dies as an isolated OOM; the bubble idles and
                    // the partition retries next cycle.
                    if cfg.memory_jitter_cv > 0.0 {
                        if let Some(need) = executor.pending_memory(slot) {
                            let actual_free =
                                window.free_memory.mul_f64(rng.jitter(cfg.memory_jitter_cv));
                            if need > actual_free {
                                isolated_ooms += 1;
                                continue;
                            }
                        }
                    }
                    let run = executor.on_bubble(slot);
                    if run.time_used.is_zero() && run.samples_completed == 0 && !run.job_finished
                    {
                        continue;
                    }
                    fill_flops += run.flops;
                    // Jittered reality: the bubble and the partition both
                    // deviate from their profiled durations.
                    let actual_window = window.duration.mul_f64(rng.jitter(cfg.jitter_cv));
                    let used = cfg.executor.switch_overhead
                        + run.time_used.mul_f64(rng.jitter(cfg.jitter_cv));
                    let usable = actual_window.mul_f64(cfg.usable_fraction);
                    delay += used.saturating_sub(usable);
                    if run.job_finished {
                        jobs_completed += 1;
                        executors[stage] = None;
                    }
                }
                stage_delays.push(delay);
            }
            // Stalls on different stages partially overlap on the
            // pipeline's critical path: the longest stall is fully paid,
            // the rest half.
            let max = stage_delays
                .iter()
                .copied()
                .max()
                .unwrap_or(SimDuration::ZERO);
            let sum: SimDuration = stage_delays.iter().copied().sum();
            total_delay += max + (sum - max).mul_f64(0.5);
        }

        let nominal_total = period * cfg.iterations as u64;
        let elapsed = nominal_total + total_delay;
        let slowdown = total_delay.as_secs_f64() / nominal_total.as_secs_f64();
        PhysicalSimResult {
            iterations: cfg.iterations,
            nominal_period: period,
            mean_period: period + total_delay / cfg.iterations as u64,
            main_slowdown: slowdown,
            fill_flops,
            recovered_tflops_per_gpu: fill_flops / (p as f64 * elapsed.as_secs_f64()) / 1e12,
            main_tflops_per_gpu: main_nominal / (1.0 + slowdown),
            jobs_completed,
            isolated_ooms,
        }
    }
}

/// Weighted round-robin over a model mix (largest-accumulator rule), with
/// training/inference alternation for the sub-700M models — realizes mix
/// weights exactly, without sampling noise.
#[derive(Debug)]
struct MixRotation {
    weights: Vec<(ModelId, f64)>,
    acc: Vec<f64>,
    kind_flip: HashMap<ModelId, bool>,
}

impl MixRotation {
    fn new(mix: &ModelMix) -> Self {
        let total: f64 = mix.weights().iter().map(|&(_, w)| w).sum();
        let weights: Vec<(ModelId, f64)> = mix
            .weights()
            .iter()
            .map(|&(m, w)| (m, w / total))
            .collect();
        MixRotation {
            acc: vec![0.0; weights.len()],
            weights,
            kind_flip: HashMap::new(),
        }
    }

    fn next(&mut self) -> (ModelId, JobKind) {
        for (i, &(_, w)) in self.weights.iter().enumerate() {
            self.acc[i] += w;
        }
        let best = self
            .acc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .map(|(i, _)| i)
            .expect("mix is non-empty");
        self.acc[best] -= 1.0;
        let model = self.weights[best].0;
        let kind = if model.trainable_as_fill_job() {
            let flip = self.kind_flip.entry(model).or_insert(false);
            *flip = !*flip;
            if *flip {
                JobKind::Training
            } else {
                JobKind::BatchInference
            }
        } else {
            JobKind::BatchInference
        };
        (model, kind)
    }
}

/// Draws the next backlog job for a stage and binds it to its plan.
/// Returns `None` (leaving the bubble idle this round) if several draws
/// in a row are infeasible on this stage.
#[allow(clippy::too_many_arguments)]
fn draw_job(
    cfg: &PhysicalSimConfig,
    stage: usize,
    stage_slots: &[Vec<(SimDuration, pipefill_device::Bytes)>],
    device: &pipefill_device::DeviceSpec,
    plan_cache: &mut HashMap<(ModelId, JobKind, usize), Option<ExecutionPlan>>,
    tput_cache: &mut HashMap<(ModelId, JobKind), Option<f64>>,
    next_job_id: &mut u64,
    rng: &mut DeterministicRng,
    mut rotation: Option<&mut MixRotation>,
) -> Option<FillJobExecutor> {
    const MAX_TRIES: usize = 5;
    for _ in 0..MAX_TRIES {
        let (model, kind) = match rotation.as_deref_mut() {
            Some(r) => r.next(),
            None => {
                let model = cfg.mix.sample_model(rng);
                (model, cfg.mix.sample_kind(model, rng))
            }
        };
        let plan = plan_cache
            .entry((model, kind, stage))
            .or_insert_with(|| {
                let slots = &stage_slots[stage];
                if slots.is_empty() {
                    return None;
                }
                let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
                plan_best(&probe, slots, device, &cfg.executor).ok()
            })
            .clone();
        let Some(plan) = plan else { continue };
        let throughput = *tput_cache.entry((model, kind)).or_insert_with(|| {
            let graph = model.build();
            exclusive_throughput(&graph, kind, device, &FillJobSpec::default_batch_sizes())
                .map(|(t, _)| t)
        });
        let Some(throughput) = throughput else { continue };
        let samples = ((cfg.backlog_job_gpu_hours * 3600.0 * throughput).round() as u64).max(1);
        let id = *next_job_id;
        *next_job_id += 1;
        let job = FillJobSpec::new(id, model, kind, samples);
        return Some(FillJobExecutor::new(job, plan));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    fn config(fill: f64) -> PhysicalSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(fill);
        cfg.iterations = 120;
        cfg
    }

    #[test]
    fn no_fill_baseline_has_zero_overhead() {
        let r = PhysicalSim::new(config(0.0)).run();
        assert_eq!(r.main_slowdown, 0.0);
        assert_eq!(r.recovered_tflops_per_gpu, 0.0);
        assert_eq!(r.jobs_completed, 0);
    }

    #[test]
    fn default_fill_fraction_keeps_overhead_under_two_percent() {
        // Fig. 5's headline: <2% slowdown at the 68% default.
        let r = PhysicalSim::new(config(0.68)).run();
        assert!(r.main_slowdown < 0.02, "slowdown {}", r.main_slowdown);
        assert!(r.recovered_tflops_per_gpu > 2.0, "recovered {}", r.recovered_tflops_per_gpu);
        assert!(r.jobs_completed > 0);
    }

    #[test]
    fn aggressive_filling_hurts_the_main_job() {
        let moderate = PhysicalSim::new(config(0.68)).run();
        let aggressive = PhysicalSim::new(config(0.95)).run();
        assert!(
            aggressive.main_slowdown > moderate.main_slowdown * 2.0,
            "moderate {} aggressive {}",
            moderate.main_slowdown,
            aggressive.main_slowdown
        );
        assert!(aggressive.main_slowdown > 0.02);
        // But total utilization keeps rising (the Fig. 5 observation).
        assert!(aggressive.recovered_tflops_per_gpu > moderate.recovered_tflops_per_gpu);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PhysicalSim::new(config(0.68)).run();
        let b = PhysicalSim::new(config(0.68)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn recovered_scales_with_fill_fraction() {
        let lo = PhysicalSim::new(config(0.3)).run();
        let hi = PhysicalSim::new(config(0.68)).run();
        assert!(
            hi.recovered_tflops_per_gpu > lo.recovered_tflops_per_gpu * 1.4,
            "lo {} hi {}",
            lo.recovered_tflops_per_gpu,
            hi.recovered_tflops_per_gpu
        );
    }

    #[test]
    fn memory_jitter_causes_isolated_ooms_not_slowdown() {
        // §4.3: a fill job exceeding its cap OOMs in isolation — the
        // main job never notices.
        let mut cfg = config(0.68);
        cfg.memory_jitter_cv = 0.4;
        let with_faults = PhysicalSim::new(cfg).run();
        let clean = PhysicalSim::new(config(0.68)).run();
        assert!(with_faults.isolated_ooms > 0, "no OOMs injected");
        assert_eq!(clean.isolated_ooms, 0);
        // Lost bubbles reduce recovered work but never the main job.
        assert!(with_faults.recovered_tflops_per_gpu < clean.recovered_tflops_per_gpu);
        assert!(
            with_faults.main_slowdown < 0.02,
            "isolation violated: slowdown {}",
            with_faults.main_slowdown
        );
    }

    #[test]
    fn overhead_is_mix_independent_at_default_fill() {
        // Fig. 6: "the overhead to the main job does not vary
        // significantly" across fill-job types.
        let xlm = PhysicalSim::new(
            config(0.68).with_mix(ModelMix::single(ModelId::XlmRobertaXl)),
        )
        .run();
        let eff = PhysicalSim::new(
            config(0.68).with_mix(ModelMix::single(ModelId::EfficientNet)),
        )
        .run();
        assert!(xlm.main_slowdown < 0.02, "xlm {}", xlm.main_slowdown);
        assert!(eff.main_slowdown < 0.02, "eff {}", eff.main_slowdown);
    }
}
