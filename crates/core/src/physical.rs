//! The fine-grained "physical cluster" simulator.
//!
//! Stand-in for the paper's 16-GPU testbed runs (§5.1, §6.1): where the
//! coarse simulator replays plans between arrival/completion events, this
//! one executes *every bubble of every iteration* with multiplicative
//! timing jitter, explicit context-switch costs, and an engine-slack
//! floor inside each bubble. Main-job slowdown is therefore an emergent
//! measurement: whenever a fill partition (plus switch cost) overruns the
//! jittered bubble's usable span, the pipeline stalls and the iteration
//! stretches — which is exactly the failure mode the paper's 68%
//! fill-fraction cap exists to avoid (Fig. 5).
//!
//! Because this models the same plans through an independent mechanism,
//! comparing its recovered FLOPS against the coarse simulator reproduces
//! the paper's simulator-validation experiment (Fig. 6, error <2%).
//!
//! The simulator is implemented as [`PhysicalBackend`], a
//! [`SimBackend`](crate::SimBackend) on the shared event kernel: each
//! main-job iteration unfolds as one `StageBubbles` event per stage (the
//! per-bubble fill execution happens in
//! [`SimBackend::on_bubble`](crate::SimBackend::on_bubble)) followed by an
//! `IterationEnd` event that folds the per-stage stalls into the pipeline's
//! critical path and schedules the next iteration at the *stretched* period
//! — so the kernel clock itself carries the emergent slowdown.
//! [`PhysicalSim`] remains the convenience entry point.

use std::collections::HashMap;
use std::sync::Arc;

use pipefill_executor::{
    exclusive_throughput, plan_best, ExecutionPlan, ExecutorConfig, FillJobExecutor, FillJobSpec,
};
use pipefill_model_zoo::{JobKind, ModelId};
use pipefill_pipeline::{BubbleWindow, MainJobSpec};
use pipefill_sim_core::rng::DeterministicRng;
use pipefill_sim_core::{EventHandler, EventQueue, SimDuration, SimTime, Simulation};
use pipefill_trace::ModelMix;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendDriver, BackendKind, BackendMetrics, ClusterEvent, SimBackend};
use crate::ff::{SteadyCounters, SteadyDetector};

/// Signature-history depth for the single-job fine-grained backends: long
/// enough for the realistic fill-cycle periods (plan cursor × rotation ×
/// job-completion interleavings), small enough that an undetectable
/// workload just falls back to event fidelity.
pub(crate) const STEADY_HISTORY: usize = 512;

/// Fine-grained simulation parameters.
#[derive(Debug, Clone)]
pub struct PhysicalSimConfig {
    /// The main job (defaults target the paper's 5B/16-GPU setup).
    pub main_job: MainJobSpec,
    /// Executor tuning; `fill_fraction` is the Fig. 5 sweep axis. A fill
    /// fraction of exactly `0.0` disables filling (the baseline run).
    pub executor: ExecutorConfig,
    /// Fill-job model mix (devices draw from an infinite backlog).
    pub mix: ModelMix,
    /// Main-job iterations to simulate.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Coefficient of variation of the multiplicative timing jitter
    /// applied to bubble windows and fill partitions.
    pub jitter_cv: f64,
    /// Fraction of each (jittered) bubble actually usable before the
    /// engine needs the device back (receive setup, allocator work).
    pub usable_fraction: f64,
    /// Size of each backlog job in GPU-hours.
    pub backlog_job_gpu_hours: f64,
    /// Draw backlog jobs by weighted round-robin instead of random
    /// sampling. Used by the simulator-validation experiment (Fig. 6) so
    /// the physical run realizes the mix weights exactly rather than up
    /// to sampling noise.
    pub deterministic_mix: bool,
    /// Failure injection: coefficient of variation of the *actual* free
    /// memory relative to the profiled value (0 disables). When a
    /// partition's memory request exceeds the jittered free memory, the
    /// allocation hits the per-process cap: the fill attempt dies with an
    /// OOM isolated to the Executor (§4.3) and the bubble goes idle —
    /// the main job is never affected.
    pub memory_jitter_cv: f64,
    /// Steady-state fast-forward: when the simulation provably enters a
    /// repeating iteration cycle (identical full-state signature at two
    /// iteration boundaries with no randomness consumed in between), skip
    /// whole cycles analytically instead of simulating their events.
    /// Results are bit-for-bit identical either way; this only trades
    /// wall-clock time. Default on.
    pub fast_forward: bool,
    /// Signature matches required before the first fast-forward skip
    /// (the "k consecutive identical iterations" knob). `u32::MAX` pins
    /// fast-forward off even when `fast_forward` is true — the degenerate
    /// k=∞ setting used by regression tests.
    pub steady_confirm: u32,
}

impl PhysicalSimConfig {
    /// Defaults matching the paper's physical experiments: the 5B main
    /// job, trace mix, 10% jitter, 82% usable bubble span.
    pub fn new(main_job: MainJobSpec) -> Self {
        PhysicalSimConfig {
            main_job,
            executor: ExecutorConfig::default(),
            mix: ModelMix::paper_mix(),
            iterations: 200,
            seed: 7,
            jitter_cv: 0.08,
            usable_fraction: 0.88,
            backlog_job_gpu_hours: 0.02,
            deterministic_mix: false,
            memory_jitter_cv: 0.0,
            fast_forward: true,
            steady_confirm: 1,
        }
    }

    /// Sets the fill fraction (Fig. 5 sweep).
    pub fn with_fill_fraction(mut self, f: f64) -> Self {
        if f == 0.0 {
            self.executor.fill_fraction = 0.0; // sentinel: no filling
        } else {
            self.executor = self.executor.with_fill_fraction(f);
        }
        self
    }

    /// Sets the model mix (Fig. 6 sweep).
    pub fn with_mix(mut self, mix: ModelMix) -> Self {
        self.mix = mix;
        self
    }
}

/// Fine-grained simulation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalSimResult {
    /// Iterations simulated.
    pub iterations: usize,
    /// Undisturbed iteration period.
    pub nominal_period: SimDuration,
    /// Mean iteration period including fill-induced stalls.
    pub mean_period: SimDuration,
    /// Main-job slowdown caused by filling: `(mean − nominal)/nominal`.
    pub main_slowdown: f64,
    /// Fill FLOPs executed.
    pub fill_flops: f64,
    /// Fill TFLOPS per GPU over the (stretched) run.
    pub recovered_tflops_per_gpu: f64,
    /// Main-job TFLOPS per GPU (slowdown-adjusted).
    pub main_tflops_per_gpu: f64,
    /// Fill jobs completed.
    pub jobs_completed: usize,
    /// Fill-job OOMs isolated by the memory cap (only non-zero under
    /// memory-jitter failure injection).
    pub isolated_ooms: u64,
    /// Iterations skipped analytically by steady-state fast-forward
    /// (zero when the run never reached a provable cycle). Skipped
    /// iterations are counted in `iterations` as usual — this only
    /// reports how many of them cost O(1) instead of events.
    pub iterations_fast_forwarded: u64,
}

impl PhysicalSimResult {
    /// Aggregate TFLOPS per GPU.
    pub fn total_tflops_per_gpu(&self) -> f64 {
        self.main_tflops_per_gpu + self.recovered_tflops_per_gpu
    }
}

/// The fine-grained backend: a [`SimBackend`] that unfolds every main-job
/// iteration into per-stage bubble events on the shared kernel. See the
/// module docs for the event flow.
pub struct PhysicalBackend {
    cfg: PhysicalSimConfig,
    period: SimDuration,
    main_nominal: f64,
    bubble_ratio: f64,
    /// Fillable windows per stage (profiled once, like the engine does).
    stage_windows: Vec<Vec<BubbleWindow>>,
    /// The same windows as `(duration, free_memory)` planner slots.
    stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>>,
    rng: DeterministicRng,
    plan_cache: HashMap<(ModelId, JobKind, usize), Option<Arc<ExecutionPlan>>>,
    tput_cache: HashMap<(ModelId, JobKind), Option<f64>>,
    executors: Vec<Option<FillJobExecutor>>,
    rotation: Option<MixRotation>,
    next_job_id: u64,
    iterations_done: usize,
    /// Per-stage stall of the iteration in flight.
    stage_delays: Vec<SimDuration>,
    total_delay: SimDuration,
    fill_flops: f64,
    jobs_completed: usize,
    isolated_ooms: u64,
    detector: SteadyDetector,
    fast_forwarded: u64,
    result: Option<PhysicalSimResult>,
}

impl PhysicalBackend {
    /// Builds the backend (runs the engine once to extract bubbles).
    pub fn new(cfg: PhysicalSimConfig) -> Self {
        let timeline = cfg.main_job.engine_timeline();
        let period = timeline.period;
        let main_nominal = cfg.main_job.main_job_tflops_per_gpu(&timeline);
        let p = timeline.stages.len();
        let stage_windows: Vec<Vec<BubbleWindow>> = timeline
            .stages
            .iter()
            .map(|s| s.fillable_windows())
            .collect();
        let stage_slots: Vec<Vec<(SimDuration, pipefill_device::Bytes)>> = stage_windows
            .iter()
            .map(|ws| ws.iter().map(|w| (w.duration, w.free_memory)).collect())
            .collect();
        let rng = DeterministicRng::seed_from(cfg.seed);
        let rotation = cfg.deterministic_mix.then(|| MixRotation::new(&cfg.mix));
        let bubble_ratio = timeline.bubble_ratio();
        let detector = SteadyDetector::new(cfg.fast_forward, cfg.steady_confirm, STEADY_HISTORY);
        PhysicalBackend {
            period,
            main_nominal,
            bubble_ratio,
            stage_windows,
            stage_slots,
            rng,
            plan_cache: HashMap::new(),
            tput_cache: HashMap::new(),
            executors: (0..p).map(|_| None).collect(),
            rotation,
            next_job_id: 0,
            iterations_done: 0,
            stage_delays: Vec::with_capacity(p),
            total_delay: SimDuration::ZERO,
            fill_flops: 0.0,
            jobs_completed: 0,
            isolated_ooms: 0,
            detector,
            fast_forwarded: 0,
            result: None,
            cfg,
        }
    }

    /// Pipeline depth.
    fn stages(&self) -> usize {
        self.stage_windows.len()
    }

    /// Draws the next backlog job for a stage and binds it to its plan.
    /// Returns `None` (leaving the bubble idle this round) if several
    /// draws in a row are infeasible on this stage.
    fn draw_job(&mut self, stage: usize) -> Option<FillJobExecutor> {
        const MAX_TRIES: usize = 5;
        let cfg = &self.cfg;
        let device = &cfg.main_job.device;
        for _ in 0..MAX_TRIES {
            let (model, kind) = match self.rotation.as_mut() {
                Some(r) => r.next(),
                None => {
                    let model = cfg.mix.sample_model(&mut self.rng);
                    (model, cfg.mix.sample_kind(model, &mut self.rng))
                }
            };
            // The cache holds `Arc`s, so handing a plan to an executor is
            // a refcount bump — profiled plans are shared, never
            // deep-copied in the per-draw hot path.
            let plan = self
                .plan_cache
                .entry((model, kind, stage))
                .or_insert_with(|| {
                    let slots = &self.stage_slots[stage];
                    if slots.is_empty() {
                        return None;
                    }
                    let probe = FillJobSpec::new(u64::MAX, model, kind, u64::MAX / 2);
                    plan_best(&probe, slots, device, &cfg.executor)
                        .ok()
                        .map(Arc::new)
                })
                .clone();
            let Some(plan) = plan else { continue };
            let throughput = *self.tput_cache.entry((model, kind)).or_insert_with(|| {
                let graph = model.build();
                exclusive_throughput(&graph, kind, device, &FillJobSpec::default_batch_sizes())
                    .map(|(t, _)| t)
            });
            let Some(throughput) = throughput else {
                continue;
            };
            let samples = ((cfg.backlog_job_gpu_hours * 3600.0 * throughput).round() as u64).max(1);
            let id = self.next_job_id;
            self.next_job_id += 1;
            let job = FillJobSpec::new(id, model, kind, samples);
            return Some(FillJobExecutor::new(job, plan));
        }
        None
    }

    /// Critical-path aggregation of the in-flight iteration's stalls.
    fn aggregate_delay(&self) -> SimDuration {
        critical_path_delay(&self.stage_delays)
    }

    /// Full behavioral state at an iteration boundary, as exact bit
    /// patterns. Two boundaries with equal signatures (and no randomness
    /// consumed in between — enforced separately by the RNG fingerprint)
    /// evolve identically, which is what licenses a fast-forward skip.
    /// Job ids are deliberately excluded: they are the one monotone,
    /// behavior-neutral component, and the skip advances them in closed
    /// form instead.
    fn steady_sig(&self) -> Vec<u64> {
        let mut sig = Vec::with_capacity(2 + 6 * self.executors.len());
        sig_rotation(&self.rotation, &mut sig);
        for ex in &self.executors {
            sig_executor(ex.as_ref(), &mut sig);
        }
        sig
    }

    /// The detailed result. Only valid after the driver has run.
    ///
    /// # Panics
    ///
    /// Panics if the backend has not been drained yet.
    pub fn into_result(self) -> PhysicalSimResult {
        self.result
            .expect("backend not drained; drive it with BackendDriver::run")
    }
}

impl EventHandler for PhysicalBackend {
    type Event = ClusterEvent;

    fn handle(&mut self, now: SimTime, event: ClusterEvent, queue: &mut EventQueue<ClusterEvent>) {
        match event {
            ClusterEvent::StageBubbles { stage } => {
                self.stage_delays.push(SimDuration::ZERO);
                for slot in 0..self.stage_windows[stage].len() {
                    self.on_bubble(now, stage, slot, queue);
                }
                // Once the last stage of this iteration ran, the stall
                // aggregate is known; the iteration boundary lands at the
                // *stretched* period so the kernel clock carries the
                // emergent slowdown.
                if stage + 1 == self.stages() {
                    queue.push(
                        now + self.period + self.aggregate_delay(),
                        ClusterEvent::IterationEnd,
                    );
                }
            }
            ClusterEvent::IterationEnd => {
                let delay = self.aggregate_delay();
                self.total_delay += delay;
                self.stage_delays.clear();
                self.iterations_done += 1;
                if self.iterations_done < self.cfg.iterations {
                    // Steady-state fast-forward: if this boundary's full
                    // state matches an earlier one (with the RNG frozen in
                    // between), the iterations separating them form a
                    // cycle that would repeat verbatim. Replay the cycle's
                    // recorded effects M times instead of simulating
                    // M × cycle events, and resume event fidelity at the
                    // advanced clock. Bit-for-bit identical by
                    // construction.
                    let mut next_at = now;
                    if self.detector.enabled() {
                        let counters = SteadyCounters {
                            completions: self.jobs_completed as u64,
                            draws: self.next_job_id,
                            aux: self.isolated_ooms,
                        };
                        if self
                            .detector
                            .observe(self.rng.state_fingerprint(), counters)
                        {
                            let sig = self.steady_sig();
                            let remaining = (self.cfg.iterations - self.iterations_done) as u64;
                            if let Some(skip) = self.detector.end_iteration(sig, delay, remaining) {
                                for _ in 0..skip.cycles {
                                    for rec in &skip.records {
                                        for &f in &rec.flops {
                                            self.fill_flops += f;
                                        }
                                    }
                                }
                                self.total_delay += skip.delay_sum * skip.cycles;
                                self.iterations_done += skip.iterations() as usize;
                                self.jobs_completed +=
                                    (skip.counters.completions * skip.cycles) as usize;
                                self.next_job_id += skip.counters.draws * skip.cycles;
                                self.isolated_ooms += skip.counters.aux * skip.cycles;
                                // In-flight jobs advance with the skipped
                                // draws so their eventual completion ids
                                // continue the event-fidelity stream.
                                for ex in self.executors.iter_mut().flatten() {
                                    ex.advance_job_id(skip.counters.draws * skip.cycles);
                                }
                                self.fast_forwarded += skip.iterations();
                                // Each skipped iteration would have fired
                                // one StageBubbles per stage plus one
                                // IterationEnd.
                                queue.credit(skip.iterations() * (self.stages() as u64 + 1));
                                next_at =
                                    now + (self.period * skip.len + skip.delay_sum) * skip.cycles;
                            }
                        }
                    }
                    for stage in 0..self.stages() {
                        queue.push(next_at, ClusterEvent::StageBubbles { stage });
                    }
                }
            }
            ClusterEvent::JobArrival(_)
            | ClusterEvent::JobCompletion { .. }
            | ClusterEvent::JobIterationEnd { .. }
            | ClusterEvent::DeviceFailure { .. }
            | ClusterEvent::DeviceRecovery { .. } => {
                debug_assert!(false, "physical backend received a foreign event");
            }
        }
    }
}

impl SimBackend for PhysicalBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Physical
    }

    fn prime(&mut self, sim: &mut Simulation<ClusterEvent>) {
        // A fill fraction of exactly 0.0 is the no-filling baseline: no
        // bubble events exist, the run is the nominal pipeline.
        if self.cfg.executor.fill_fraction == 0.0 || self.cfg.iterations == 0 {
            return;
        }
        for stage in 0..self.stages() {
            sim.schedule(SimTime::ZERO, ClusterEvent::StageBubbles { stage });
        }
    }

    fn on_bubble(
        &mut self,
        _now: SimTime,
        stage: usize,
        slot: usize,
        _queue: &mut EventQueue<ClusterEvent>,
    ) {
        let window = self.stage_windows[stage][slot];
        // Refill the device's backlog if idle.
        if self.executors[stage].is_none() {
            self.executors[stage] = self.draw_job(stage);
        }
        let cfg_jitter = self.cfg.jitter_cv;
        let Some(executor) = self.executors[stage].as_mut() else {
            return;
        };
        // Failure injection: the engine capped the Executor at the
        // profiled free memory, but the *actual* free memory this bubble
        // may be less. A request over the cap dies as an isolated OOM; the
        // bubble idles and the partition retries next cycle.
        if self.cfg.memory_jitter_cv > 0.0 {
            if let Some(need) = executor.pending_memory(slot) {
                let actual_free = window
                    .free_memory
                    .mul_f64(self.rng.jitter(self.cfg.memory_jitter_cv));
                if need > actual_free {
                    self.isolated_ooms += 1;
                    return;
                }
            }
        }
        let run = executor.on_bubble(slot);
        if run.time_used.is_zero() && run.samples_completed == 0 && !run.job_finished {
            return;
        }
        self.fill_flops += run.flops;
        self.detector.record_flops(run.flops);
        // Jittered reality: the bubble and the partition both deviate from
        // their profiled durations.
        let actual_window = window.duration.mul_f64(self.rng.jitter(cfg_jitter));
        let used =
            self.cfg.executor.switch_overhead + run.time_used.mul_f64(self.rng.jitter(cfg_jitter));
        let usable = actual_window.mul_f64(self.cfg.usable_fraction);
        let delay = used.saturating_sub(usable);
        // Normally `handle(StageBubbles)` opened this iteration's stall
        // accumulator; when `on_bubble` is driven directly (the trait is
        // public), open one on demand instead of panicking.
        if self.stage_delays.is_empty() {
            self.stage_delays.push(SimDuration::ZERO);
        }
        *self
            .stage_delays
            .last_mut()
            .expect("just ensured non-empty") += delay;
        if run.job_finished {
            self.jobs_completed += 1;
            self.executors[stage] = None;
        }
    }

    fn drain(&mut self, now: SimTime) {
        let p = self.stages();
        let iterations = self.cfg.iterations;
        let nominal_total = self.period * iterations as u64;
        let elapsed = nominal_total + self.total_delay;
        debug_assert!(
            self.cfg.executor.fill_fraction == 0.0
                || iterations == 0
                || now.saturating_since(SimTime::ZERO) == elapsed,
            "kernel clock diverged from delay accounting"
        );
        let slowdown = if iterations == 0 {
            0.0
        } else {
            self.total_delay.as_secs_f64() / nominal_total.as_secs_f64()
        };
        self.result = Some(PhysicalSimResult {
            iterations,
            nominal_period: self.period,
            mean_period: if iterations == 0 {
                self.period
            } else {
                self.period + self.total_delay / iterations as u64
            },
            main_slowdown: slowdown,
            fill_flops: self.fill_flops,
            recovered_tflops_per_gpu: if self.fill_flops == 0.0 {
                0.0
            } else {
                self.fill_flops / (p as f64 * elapsed.as_secs_f64()) / 1e12
            },
            main_tflops_per_gpu: self.main_nominal / (1.0 + slowdown),
            jobs_completed: self.jobs_completed,
            isolated_ooms: self.isolated_ooms,
            iterations_fast_forwarded: self.fast_forwarded,
        });
    }

    fn metrics(&self, events_dispatched: u64) -> BackendMetrics {
        let result = self
            .result
            .as_ref()
            .expect("metrics requested before drain");
        let elapsed = self.period * result.iterations as u64 + self.total_delay;
        BackendMetrics {
            kind: BackendKind::Physical,
            num_devices: self.stages(),
            elapsed,
            events_dispatched,
            fill_flops: result.fill_flops,
            recovered_tflops_per_gpu: result.recovered_tflops_per_gpu,
            main_tflops_per_gpu: result.main_tflops_per_gpu,
            main_slowdown: result.main_slowdown,
            bubble_ratio: self.bubble_ratio,
            jobs_completed: result.jobs_completed,
            // This fidelity injects memory faults (isolated OOMs), not
            // device failures: nothing is evicted mid-execution.
            evictions: 0,
            lost_fill_flops: 0.0,
            goodput_fraction: 1.0,
        }
    }
}

/// The fine-grained simulator: the convenience entry point wrapping
/// [`PhysicalBackend`] in a [`BackendDriver`]. See module docs.
#[derive(Debug)]
pub struct PhysicalSim {
    config: PhysicalSimConfig,
}

impl PhysicalSim {
    /// Creates a simulator.
    pub fn new(config: PhysicalSimConfig) -> Self {
        PhysicalSim { config }
    }

    /// Runs the simulation on the shared event kernel.
    pub fn run(&self) -> PhysicalSimResult {
        let (_, backend) = BackendDriver::new(PhysicalBackend::new(self.config.clone())).run();
        backend.into_result()
    }
}

/// Critical-path aggregation of one iteration's per-stage stalls: stalls
/// on different stages partially overlap, so the longest is fully paid
/// and the rest half. Shared by every fine-grained backend so their
/// slowdown semantics stay identical.
pub(crate) fn critical_path_delay(stage_delays: &[SimDuration]) -> SimDuration {
    let max = stage_delays
        .iter()
        .copied()
        .max()
        .unwrap_or(SimDuration::ZERO);
    let sum: SimDuration = stage_delays.iter().copied().sum();
    max + (sum - max).mul_f64(0.5)
}

/// Weighted round-robin over a model mix (largest-accumulator rule), with
/// training/inference alternation for the sub-700M models — realizes mix
/// weights exactly, without sampling noise. Shared with the fault backend
/// so the two fine-grained fidelities realize identical workloads.
#[derive(Debug)]
pub(crate) struct MixRotation {
    weights: Vec<(ModelId, f64)>,
    acc: Vec<f64>,
    kind_flip: HashMap<ModelId, bool>,
}

impl MixRotation {
    /// Validates the mix and builds the rotation. Non-finite, negative or
    /// all-zero weights are reported as an error instead of deferring a
    /// panic into the per-draw selection loop.
    pub(crate) fn try_new(mix: &ModelMix) -> Result<Self, String> {
        Self::try_from_weights(mix.weights())
    }

    pub(crate) fn try_from_weights(raw: &[(ModelId, f64)]) -> Result<Self, String> {
        if raw.is_empty() {
            return Err("model mix has no entries".to_string());
        }
        for &(m, w) in raw {
            if !w.is_finite() || w < 0.0 {
                return Err(format!("model mix weight for {m:?} is not usable: {w}"));
            }
        }
        let total: f64 = raw.iter().map(|&(_, w)| w).sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(format!("model mix weights sum to {total}, need > 0"));
        }
        let weights: Vec<(ModelId, f64)> = raw.iter().map(|&(m, w)| (m, w / total)).collect();
        Ok(MixRotation {
            acc: vec![0.0; weights.len()],
            weights,
            kind_flip: HashMap::new(),
        })
    }

    /// # Panics
    ///
    /// Panics if the mix fails [`Self::try_new`] validation. Every
    /// in-tree [`ModelMix`] constructor produces valid weights.
    pub(crate) fn new(mix: &ModelMix) -> Self {
        Self::try_new(mix).expect("invalid model mix")
    }

    pub(crate) fn next(&mut self) -> (ModelId, JobKind) {
        for (i, &(_, w)) in self.weights.iter().enumerate() {
            self.acc[i] += w;
        }
        // Manual total-order scan with a fixed index-order tie rule:
        // `>=` keeps the *highest* maximal index, so exact ties (e.g. a
        // 50/50 blend) resolve identically on every run and platform.
        // This replaces `max_by(partial_cmp(..).expect(..))`, which
        // panicked on NaN; the tie direction deliberately matches
        // `max_by`'s last-maximum rule so realized sequences (and the
        // golden experiment outputs derived from them) are unchanged.
        let mut best = 0;
        for i in 1..self.acc.len() {
            if self.acc[i] >= self.acc[best] {
                best = i;
            }
        }
        self.acc[best] -= 1.0;
        let model = self.weights[best].0;
        let kind = if model.trainable_as_fill_job() {
            let flip = self.kind_flip.entry(model).or_insert(false);
            *flip = !*flip;
            if *flip {
                JobKind::Training
            } else {
                JobKind::BatchInference
            }
        } else {
            JobKind::BatchInference
        };
        (model, kind)
    }

    /// Appends the rotation's full state (accumulators and
    /// training/inference flips) to a steady-state signature, iterating
    /// in stable weight order — never over the `HashMap`.
    pub(crate) fn sig_into(&self, out: &mut Vec<u64>) {
        for (i, &(m, _)) in self.weights.iter().enumerate() {
            out.push(self.acc[i].to_bits());
            out.push(self.kind_flip.get(&m).copied().unwrap_or(false) as u64);
        }
    }
}

/// Appends an optional [`MixRotation`]'s state to a signature.
pub(crate) fn sig_rotation(rotation: &Option<MixRotation>, out: &mut Vec<u64>) {
    match rotation {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            r.sig_into(out);
        }
    }
}

/// Appends one device slot's executor state to a signature. The plan's
/// `Arc` pointer stands in for (model, kind, stage, plan) identity: plan
/// cache entries live for the whole run, so equal pointers mean the same
/// profiled plan. Job ids are excluded on purpose (see the backends'
/// `steady_sig`).
pub(crate) fn sig_executor(ex: Option<&FillJobExecutor>, out: &mut Vec<u64>) {
    match ex {
        None => out.push(0),
        Some(ex) => {
            out.push(1);
            out.push(Arc::as_ptr(ex.plan_handle()) as usize as u64);
            out.push(ex.cursor() as u64);
            out.push(ex.samples_done());
            out.push(ex.flops_done().to_bits());
            out.push(ex.bubble_time_used().as_nanos());
            out.push(ex.job().samples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_pipeline::ScheduleKind;

    fn config(fill: f64) -> PhysicalSimConfig {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(fill);
        cfg.iterations = 120;
        cfg
    }

    #[test]
    fn no_fill_baseline_has_zero_overhead() {
        let r = PhysicalSim::new(config(0.0)).run();
        assert_eq!(r.main_slowdown, 0.0);
        assert_eq!(r.recovered_tflops_per_gpu, 0.0);
        assert_eq!(r.jobs_completed, 0);
    }

    #[test]
    fn default_fill_fraction_keeps_overhead_under_two_percent() {
        // Fig. 5's headline: <2% slowdown at the 68% default.
        let r = PhysicalSim::new(config(0.68)).run();
        assert!(r.main_slowdown < 0.02, "slowdown {}", r.main_slowdown);
        assert!(
            r.recovered_tflops_per_gpu > 2.0,
            "recovered {}",
            r.recovered_tflops_per_gpu
        );
        assert!(r.jobs_completed > 0);
    }

    #[test]
    fn aggressive_filling_hurts_the_main_job() {
        let moderate = PhysicalSim::new(config(0.68)).run();
        let aggressive = PhysicalSim::new(config(0.95)).run();
        assert!(
            aggressive.main_slowdown > moderate.main_slowdown * 2.0,
            "moderate {} aggressive {}",
            moderate.main_slowdown,
            aggressive.main_slowdown
        );
        assert!(aggressive.main_slowdown > 0.02);
        // But total utilization keeps rising (the Fig. 5 observation).
        assert!(aggressive.recovered_tflops_per_gpu > moderate.recovered_tflops_per_gpu);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PhysicalSim::new(config(0.68)).run();
        let b = PhysicalSim::new(config(0.68)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn recovered_scales_with_fill_fraction() {
        let lo = PhysicalSim::new(config(0.3)).run();
        let hi = PhysicalSim::new(config(0.68)).run();
        assert!(
            hi.recovered_tflops_per_gpu > lo.recovered_tflops_per_gpu * 1.4,
            "lo {} hi {}",
            lo.recovered_tflops_per_gpu,
            hi.recovered_tflops_per_gpu
        );
    }

    #[test]
    fn memory_jitter_causes_isolated_ooms_not_slowdown() {
        // §4.3: a fill job exceeding its cap OOMs in isolation — the
        // main job never notices.
        let mut cfg = config(0.68);
        cfg.memory_jitter_cv = 0.4;
        let with_faults = PhysicalSim::new(cfg).run();
        let clean = PhysicalSim::new(config(0.68)).run();
        assert!(with_faults.isolated_ooms > 0, "no OOMs injected");
        assert_eq!(clean.isolated_ooms, 0);
        // Lost bubbles reduce recovered work but never the main job.
        assert!(with_faults.recovered_tflops_per_gpu < clean.recovered_tflops_per_gpu);
        assert!(
            with_faults.main_slowdown < 0.02,
            "isolation violated: slowdown {}",
            with_faults.main_slowdown
        );
    }

    #[test]
    fn rotation_ties_resolve_by_index_deterministically() {
        // A 50/50 blend produces exact accumulator ties every other draw;
        // the fixed index-order rule (last maximal index wins, matching
        // the historical `max_by` behavior) must alternate
        // deterministically instead of depending on float comparison
        // quirks.
        let mix = ModelMix::blend(ModelId::XlmRobertaXl, ModelId::EfficientNet, 0.5);
        let mut r = MixRotation::new(&mix);
        let seq: Vec<ModelId> = (0..8).map(|_| r.next().0).collect();
        let expect: Vec<ModelId> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    ModelId::EfficientNet
                } else {
                    ModelId::XlmRobertaXl
                }
            })
            .collect();
        assert_eq!(seq, expect);
    }

    #[test]
    fn rotation_rejects_unusable_weights() {
        // Regression: non-finite weights used to panic inside the
        // per-draw `max_by(partial_cmp)` selection; they now surface as a
        // constructor error.
        assert!(MixRotation::try_from_weights(&[]).is_err());
        assert!(MixRotation::try_from_weights(&[(ModelId::BertBase, f64::NAN)]).is_err());
        assert!(MixRotation::try_from_weights(&[(ModelId::BertBase, f64::INFINITY)]).is_err());
        assert!(MixRotation::try_from_weights(&[(ModelId::BertBase, -1.0)]).is_err());
        assert!(MixRotation::try_from_weights(&[(ModelId::BertBase, 0.0)]).is_err());
        assert!(MixRotation::try_new(&ModelMix::paper_mix()).is_ok());
    }

    #[test]
    fn fast_forward_matches_event_fidelity_bit_for_bit() {
        // A jitter-free deterministic run reaches steady state; the
        // fast-forwarded result must be indistinguishable except for the
        // skip counter.
        let mut on = config(0.68).with_mix(ModelMix::single(ModelId::EfficientNet));
        on.jitter_cv = 0.0;
        on.deterministic_mix = true;
        on.backlog_job_gpu_hours = 0.002;
        on.iterations = 400;
        let mut off = on.clone();
        off.fast_forward = false;
        let r_on = PhysicalSim::new(on).run();
        let r_off = PhysicalSim::new(off).run();
        assert!(
            r_on.iterations_fast_forwarded > 0,
            "steady state never detected"
        );
        assert_eq!(r_off.iterations_fast_forwarded, 0);
        let mut r_on = r_on;
        r_on.iterations_fast_forwarded = 0;
        assert_eq!(r_on, r_off);
        assert_eq!(r_on.fill_flops.to_bits(), r_off.fill_flops.to_bits());
    }

    #[test]
    fn jittered_runs_never_fast_forward() {
        // The default fidelity consumes randomness every iteration; the
        // detector must stay disarmed and results must equal the
        // pre-fast-forward behavior exactly.
        let r = PhysicalSim::new(config(0.68)).run();
        assert_eq!(r.iterations_fast_forwarded, 0);
    }

    #[test]
    fn overhead_is_mix_independent_at_default_fill() {
        // Fig. 6: "the overhead to the main job does not vary
        // significantly" across fill-job types.
        let xlm =
            PhysicalSim::new(config(0.68).with_mix(ModelMix::single(ModelId::XlmRobertaXl))).run();
        let eff =
            PhysicalSim::new(config(0.68).with_mix(ModelMix::single(ModelId::EfficientNet))).run();
        assert!(xlm.main_slowdown < 0.02, "xlm {}", xlm.main_slowdown);
        assert!(eff.main_slowdown < 0.02, "eff {}", eff.main_slowdown);
    }
}
