//! Property tests for the `SimBackend` layer: event-loop determinism
//! (same seed ⇒ identical metrics) and metric sanity for both fidelity
//! levels, across arbitrary seeds and configurations.

use proptest::prelude::*;

use pipefill_core::{
    BackendConfig, BackendKind, ClusterSimConfig, FleetSimConfig, PhysicalSimConfig, PolicyKind,
};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;
use pipefill_trace::FleetWorkloadConfig;
use pipefill_trace::TraceConfig;

fn coarse_config(seed: u64, load_pct: u64, policy_idx: usize) -> ClusterSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut trace = TraceConfig::physical(seed).with_load(load_pct as f64 / 100.0);
    trace.horizon = SimDuration::from_secs(600);
    let mut cfg = ClusterSimConfig::new(main, trace);
    cfg.policy = [
        PolicyKind::Fifo,
        PolicyKind::Sjf,
        PolicyKind::MakespanMin,
        PolicyKind::DeadlineThenSjf,
    ][policy_idx % 4];
    cfg
}

fn physical_config(seed: u64, fill_pct: u64, iterations: usize) -> PhysicalSimConfig {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(fill_pct as f64 / 100.0);
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed, same configuration ⇒ bit-identical metrics from the
    /// coarse backend, regardless of policy or load.
    #[test]
    fn coarse_backend_is_deterministic(
        seed in 0u64..1_000,
        load_pct in 30u64..300,
        policy_idx in 0usize..4,
    ) {
        let run = || BackendConfig::Coarse(coarse_config(seed, load_pct, policy_idx)).run().metrics;
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "coarse backend diverged for seed {}", seed);
    }

    /// Same seed ⇒ bit-identical metrics from the physical backend; a
    /// different seed perturbs the jittered measurements.
    #[test]
    fn physical_backend_is_deterministic(seed in 0u64..1_000, fill_pct in 20u64..97) {
        let run = |s: u64| {
            BackendConfig::Physical(physical_config(s, fill_pct, 40)).run().metrics
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b, "physical backend diverged for seed {}", seed);
        let c = run(seed + 1);
        prop_assert!(
            a.fill_flops != c.fill_flops || a.main_slowdown != c.main_slowdown,
            "different seeds produced identical jittered runs"
        );
    }

    /// Fidelity-independent metric invariants hold for both backends.
    #[test]
    fn backend_metrics_are_sane(seed in 0u64..500) {
        let runs = [
            BackendConfig::Coarse(coarse_config(seed, 150, 1)).run(),
            BackendConfig::Physical(physical_config(seed, 68, 40)).run(),
        ];
        for run in runs {
            let m = run.metrics;
            prop_assert!(m.num_devices == 16);
            prop_assert!(m.events_dispatched > 0, "{} backend dispatched nothing", m.kind);
            prop_assert!(m.recovered_tflops_per_gpu >= 0.0);
            prop_assert!(m.fill_flops >= 0.0);
            prop_assert!(m.main_slowdown >= 0.0);
            prop_assert!((0.0..=1.0).contains(&m.bubble_ratio));
            // Recovered work can never exceed peak × bubble share.
            prop_assert!(
                m.recovered_tflops_per_gpu < 125.0 * m.bubble_ratio,
                "{} backend recovered {} TFLOPS with bubble ratio {}",
                m.kind,
                m.recovered_tflops_per_gpu,
                m.bubble_ratio
            );
            prop_assert!(m.total_tflops_per_gpu() < 125.0);
            match m.kind {
                BackendKind::Coarse => prop_assert_eq!(m.main_slowdown, 0.0),
                BackendKind::Physical | BackendKind::Fault | BackendKind::Fleet => {
                    prop_assert!(m.main_slowdown < 1.0)
                }
            }
        }
    }

    /// Same seed ⇒ bit-identical metrics from the fleet backend, at any
    /// fleet size, with fault injection (and therefore global-queue
    /// traffic) active.
    #[test]
    fn fleet_backend_is_deterministic(seed in 0u64..500, jobs in 1usize..4) {
        let run = || {
            let mut workload = FleetWorkloadConfig::new(jobs, jobs * 64, seed);
            workload.iterations = 20;
            let cfg = FleetSimConfig::from_workload(&workload)
                .with_mtbf(pipefill_sim_core::SimDuration::from_secs(600));
            BackendConfig::Fleet(cfg).run().metrics
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "fleet backend diverged for seed {}", seed);
        prop_assert_eq!(a.kind, BackendKind::Fleet);
        prop_assert!(a.events_dispatched > 0);
    }
}
