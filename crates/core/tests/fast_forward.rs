//! Property tests for steady-state fast-forward: skipping is a pure
//! wall-clock optimization, so with identical configuration the skipped
//! and event-by-event runs must agree on every [`BackendMetrics`] field
//! *bit for bit* — across every simulation backend, every pipeline
//! schedule and arbitrary seeds. A jittered run consumes RNG every
//! iteration, so the quiescence pre-filter must keep the detector
//! disarmed; an infinite confirmation threshold must never skip.

use proptest::prelude::*;

use pipefill_core::{
    BackendConfig, BackendMetrics, BackendRun, FaultSimConfig, FleetJobConfig, FleetSimConfig,
    PhysicalSimConfig,
};
use pipefill_model_zoo::ModelId;
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_trace::ModelMix;

const SCHEDULES: [ScheduleKind; 4] = [
    ScheduleKind::GPipe,
    ScheduleKind::OneFOneB,
    ScheduleKind::Interleaved { chunks: 2 },
    ScheduleKind::ZbH1,
];

/// Iterations per run: detection needs ~150 boundaries in the quiescent
/// regime, leaving a long skippable tail.
const ITERS: usize = 400;

/// A quiescent physical config: no jitter draws, deterministic
/// single-model mix, small fill jobs — the regime in which the detector
/// can prove a repeating iteration cycle. The tiny backlog keeps the
/// executor cycle short on every schedule's bubble geometry (1F1B's
/// smaller windows need smaller jobs to recur within the run).
fn quiet_physical(seed: u64, schedule: ScheduleKind) -> PhysicalSimConfig {
    let main = MainJobSpec::physical_5b(8, schedule);
    let mut cfg = PhysicalSimConfig::new(main).with_fill_fraction(0.68);
    cfg.iterations = ITERS;
    cfg.seed = seed;
    cfg.jitter_cv = 0.0;
    cfg.deterministic_mix = true;
    cfg.mix = ModelMix::single(ModelId::EfficientNet);
    cfg.backlog_job_gpu_hours = 0.0005;
    cfg
}

/// The fault backend in the same quiescent regime (injection disabled —
/// the gate under which its detector arms).
fn quiet_fault(seed: u64, schedule: ScheduleKind) -> FaultSimConfig {
    let main = MainJobSpec::physical_5b(8, schedule);
    let mut cfg = FaultSimConfig::new(main).with_fill_fraction(0.68);
    cfg.iterations = ITERS;
    cfg.seed = seed;
    cfg.jitter_cv = 0.0;
    cfg.deterministic_mix = true;
    cfg.mix = ModelMix::single(ModelId::EfficientNet);
    cfg.backlog_job_gpu_hours = 0.0005;
    cfg
}

/// A quiescent two-job fleet: per-job detectors, distinct per-job seeds.
fn quiet_fleet(seed: u64, schedule: ScheduleKind) -> FleetSimConfig {
    let main = MainJobSpec::physical_5b(8, schedule);
    let jobs = (0..2)
        .map(|j| {
            let mut job = FleetJobConfig::new(main.clone());
            job.iterations = ITERS;
            job.seed = seed + j as u64;
            job
        })
        .collect();
    let mut cfg = FleetSimConfig::new(jobs);
    cfg.jitter_cv = 0.0;
    cfg.deterministic_mix = true;
    cfg.mix = ModelMix::single(ModelId::EfficientNet);
    cfg.backlog_job_gpu_hours = 0.0005;
    cfg
}

fn set_fast_forward(cfg: &mut BackendConfig, on: bool) {
    match cfg {
        BackendConfig::Physical(c) => c.fast_forward = on,
        BackendConfig::Fault(c) => c.fast_forward = on,
        BackendConfig::Fleet(c) => c.fast_forward = on,
        BackendConfig::Coarse(_) => unreachable!("coarse has no iteration loop"),
    }
}

fn set_steady_confirm(cfg: &mut BackendConfig, confirm: u32) {
    match cfg {
        BackendConfig::Physical(c) => c.steady_confirm = confirm,
        BackendConfig::Fault(c) => c.steady_confirm = confirm,
        BackendConfig::Fleet(c) => c.steady_confirm = confirm,
        BackendConfig::Coarse(_) => unreachable!("coarse has no iteration loop"),
    }
}

/// Iterations the run skipped, from whichever detail it produced.
fn fast_forwarded(run: &BackendRun) -> u64 {
    run.as_physical()
        .map(|r| r.iterations_fast_forwarded)
        .or_else(|| run.as_fault().map(|r| r.iterations_fast_forwarded))
        .or_else(|| run.as_fleet().map(|r| r.iterations_fast_forwarded))
        .expect("simulation backends report the skip counter")
}

/// Every shared-metrics field with floats as raw bits: the invariant is
/// bit-for-bit equality, not closeness.
fn metric_bits(m: &BackendMetrics) -> [u64; 12] {
    [
        m.num_devices as u64,
        m.elapsed.as_nanos(),
        m.events_dispatched,
        m.fill_flops.to_bits(),
        m.recovered_tflops_per_gpu.to_bits(),
        m.main_tflops_per_gpu.to_bits(),
        m.main_slowdown.to_bits(),
        m.bubble_ratio.to_bits(),
        m.jobs_completed as u64,
        m.evictions,
        m.lost_fill_flops.to_bits(),
        m.goodput_fraction.to_bits(),
    ]
}

/// Runs one config with the knob on and off; returns (on, off).
fn on_off(cfg: BackendConfig) -> (BackendRun, BackendRun) {
    let mut on = cfg.clone();
    set_fast_forward(&mut on, true);
    let mut off = cfg;
    set_fast_forward(&mut off, false);
    (on.run(), off.run())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Quiescent runs: fast-forward fires on every backend × schedule at
    /// an arbitrary seed, and the metrics agree down to the last bit.
    #[test]
    fn fast_forward_is_bitwise_invisible(seed in 0u64..1_000, sched in 0usize..SCHEDULES.len()) {
        let schedule = SCHEDULES[sched];
        let configs = [
            BackendConfig::Physical(quiet_physical(seed, schedule)),
            BackendConfig::Fault(quiet_fault(seed, schedule)),
            BackendConfig::Fleet(quiet_fleet(seed, schedule)),
        ];
        for cfg in configs {
            let kind = cfg.kind();
            let (r_on, r_off) = on_off(cfg);
            prop_assert!(
                fast_forwarded(&r_on) > 0,
                "{kind}/{schedule} seed {seed}: steady state never detected"
            );
            prop_assert_eq!(
                fast_forwarded(&r_off), 0,
                "{}/{} seed {}: the off run must not skip", kind, schedule, seed
            );
            prop_assert_eq!(
                metric_bits(r_on.metrics()),
                metric_bits(r_off.metrics()),
                "{}/{} seed {}: fast-forward changed the metrics", kind, schedule, seed
            );
        }
    }

    /// Default-jitter runs draw RNG every iteration: the quiescence
    /// pre-filter keeps the detector disarmed and the knob is a no-op.
    #[test]
    fn jittered_runs_never_fast_forward(seed in 0u64..1_000) {
        let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
        let mut phys = PhysicalSimConfig::new(main.clone()).with_fill_fraction(0.68);
        phys.iterations = 60;
        phys.seed = seed;
        let mut fault = FaultSimConfig::new(main).with_fill_fraction(0.68);
        fault.iterations = 60;
        fault.seed = seed;
        for cfg in [BackendConfig::Physical(phys), BackendConfig::Fault(fault)] {
            let kind = cfg.kind();
            let (r_on, r_off) = on_off(cfg);
            prop_assert_eq!(
                fast_forwarded(&r_on), 0,
                "{} seed {}: jittered run fast-forwarded", kind, seed
            );
            prop_assert_eq!(
                metric_bits(r_on.metrics()),
                metric_bits(r_off.metrics())
            );
        }
    }
}

/// Degenerate pin: `steady_confirm = u32::MAX` can never accumulate
/// enough confirmations, so the detector observes but never skips and
/// the run is exactly the event-fidelity run.
#[test]
fn infinite_confirm_threshold_never_skips() {
    for make in [
        |s, sch| BackendConfig::Physical(quiet_physical(s, sch)),
        |s, sch| BackendConfig::Fault(quiet_fault(s, sch)),
        |s, sch| BackendConfig::Fleet(quiet_fleet(s, sch)),
    ] {
        let mut pinned = make(7, ScheduleKind::GPipe);
        set_fast_forward(&mut pinned, true);
        set_steady_confirm(&mut pinned, u32::MAX);
        let mut off = make(7, ScheduleKind::GPipe);
        set_fast_forward(&mut off, false);
        let kind = pinned.kind();
        let r_pinned = pinned.run();
        let r_off = off.run();
        assert_eq!(
            fast_forwarded(&r_pinned),
            0,
            "{kind}: an unreachable confirmation threshold still skipped"
        );
        assert_eq!(
            metric_bits(r_pinned.metrics()),
            metric_bits(r_off.metrics()),
            "{kind}: observing without skipping perturbed the run"
        );
    }
}
