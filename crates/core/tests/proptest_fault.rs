//! Property tests for the heterogeneous + fault-injecting backend:
//! no-fault inertness, monotone degradation in the failure rate, and the
//! exactly-once completion invariant for evicted jobs, across arbitrary
//! seeds and checkpoint costs.

use proptest::prelude::*;

use pipefill_core::{BackendConfig, FaultSimConfig, FaultSimResult};
use pipefill_pipeline::{MainJobSpec, ScheduleKind};
use pipefill_sim_core::SimDuration;

fn run_fault(seed: u64, iterations: usize, mtbf: SimDuration, ckpt_secs: f64) -> FaultSimResult {
    let main = MainJobSpec::physical_5b(8, ScheduleKind::GPipe);
    let mut cfg = FaultSimConfig::new(main)
        .with_mtbf(mtbf)
        .with_checkpoint_cost(SimDuration::from_secs_f64(ckpt_secs));
    cfg.iterations = iterations;
    cfg.seed = seed;
    BackendConfig::Fault(cfg)
        .run()
        .fault()
        .expect("fault config yields fault detail")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An MTBF beyond the run's horizon injects nothing: no failures, no
    /// evictions, no lost work, goodput exactly 1.
    #[test]
    fn mtbf_beyond_horizon_evicts_nothing(seed in 0u64..1_000, ckpt_pct in 0u64..80) {
        // The 40-iteration run spans minutes; a ~32-year MTBF per device
        // cannot fire within it under any seed's exponential draw (the
        // earliest draw observed across the u64 seed space is orders of
        // magnitude above the horizon).
        let r = run_fault(seed, 40, SimDuration::from_secs(1_000_000_000), ckpt_pct as f64 / 10.0);
        prop_assert_eq!(r.failures, 0, "seed {} injected failures", seed);
        prop_assert_eq!(r.evictions, 0);
        prop_assert_eq!(r.lost_fill_flops, 0.0);
        prop_assert_eq!(r.goodput_fraction, 1.0);
        prop_assert_eq!(r.bubbles_lost, 0);
        prop_assert_eq!(r.downtime, SimDuration::ZERO);
    }

    /// Raising the failure rate (lowering the MTBF) never *increases*
    /// recovered throughput: each step down the MTBF ladder loses at
    /// least as much fill work to downtime and evictions. Failure
    /// processes own forked RNG streams, so the workload draws are
    /// identical across the ladder; a 2% tolerance absorbs the jitter
    /// realignment the extra/fewer eviction paths cause.
    #[test]
    fn recovered_tflops_degrade_with_failure_rate(seed in 0u64..500) {
        let ladder = [
            SimDuration::MAX,
            SimDuration::from_secs(14_400),
            SimDuration::from_secs(3_600),
            SimDuration::from_secs(900),
            SimDuration::from_secs(300),
        ];
        let recovered: Vec<f64> = ladder
            .iter()
            .map(|&mtbf| run_fault(seed, 60, mtbf, 2.0).recovered_tflops_per_gpu)
            .collect();
        for (i, pair) in recovered.windows(2).enumerate() {
            prop_assert!(
                pair[1] <= pair[0] * 1.02,
                "seed {}: recovered went up at ladder step {}: {} -> {}",
                seed, i, pair[0], pair[1]
            );
        }
        // And the ends of the ladder separate decisively.
        prop_assert!(
            recovered[ladder.len() - 1] < recovered[0],
            "seed {}: a 5-minute MTBF did not cost anything ({} vs {})",
            seed, recovered[ladder.len() - 1], recovered[0]
        );
    }

    /// An evicted job that is revived completes at most once, and the
    /// completion ledger matches the counter — no double counting
    /// through the evict → requeue → resume path.
    #[test]
    fn evicted_jobs_are_never_double_completed(seed in 0u64..500, ckpt_pct in 0u64..80) {
        let r = run_fault(seed, 80, SimDuration::from_secs(250), ckpt_pct as f64 / 10.0);
        prop_assert!(r.failures > 0, "seed {} never failed at a 250s MTBF", seed);
        let mut ids: Vec<_> = r.completed_job_ids.clone();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(before, ids.len(), "seed {}: a job completed twice", seed);
        prop_assert_eq!(r.completed_job_ids.len(), r.jobs_completed);
        // Accounting identities hold under eviction pressure.
        prop_assert!(r.fill_flops >= 0.0);
        prop_assert!(r.lost_fill_flops >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.goodput_fraction));
    }
}
