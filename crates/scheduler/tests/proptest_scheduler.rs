//! Property tests for the scheduler: conservation, projection
//! consistency, and policy sanity under arbitrary job populations.

use proptest::prelude::*;

use pipefill_executor::JobId;
use pipefill_scheduler::{
    EarliestDeadlineFirst, Fifo, FillJobScheduler, JobInfo, MakespanMin, SchedulingPolicy,
    ShortestJobFirst, SystemState,
};
use pipefill_sim_core::{SimDuration, SimTime};

#[derive(Debug, Clone)]
struct RawJob {
    arrival: u32,
    procs: Vec<Option<u32>>, // per executor, seconds
    deadline: Option<u32>,
}

fn job_strategy(executors: usize) -> impl Strategy<Value = RawJob> {
    (
        0u32..1_000,
        prop::collection::vec(prop::option::of(1u32..500), executors),
        prop::option::of(1u32..5_000),
    )
        .prop_map(|(arrival, procs, deadline)| RawJob {
            arrival,
            procs,
            deadline,
        })
}

fn build(jobs: &[RawJob]) -> Vec<JobInfo> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            let mut info = JobInfo::new(
                JobId(i as u64),
                SimTime::from_secs_f64(j.arrival as f64),
                j.procs
                    .iter()
                    .map(|p| p.map(|s| SimDuration::from_secs(s as u64)))
                    .collect(),
            );
            if let Some(d) = j.deadline {
                info = info.with_deadline(SimTime::from_secs_f64(d as f64));
            }
            info
        })
        .collect()
}

fn policies() -> Vec<Box<dyn SchedulingPolicy>> {
    vec![
        Box::new(Fifo),
        Box::new(ShortestJobFirst),
        Box::new(MakespanMin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatching drains exactly the feasible jobs, each exactly once,
    /// under every policy.
    #[test]
    fn dispatch_conserves_jobs(
        raw in prop::collection::vec(job_strategy(3), 0..30),
        policy_idx in 0usize..3,
    ) {
        let jobs = build(&raw);
        let mut sched = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            sched.submit(j.clone());
        }
        let state = SystemState::idle(SimTime::ZERO, 3);
        let mut dispatched: Vec<JobId> = Vec::new();
        // Round-robin executors until nothing moves.
        loop {
            let mut progressed = false;
            for e in 0..3 {
                if let Some(j) = sched.pick_for(e, &state) {
                    prop_assert!(j.feasible_on(e));
                    dispatched.push(j.id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let feasible = jobs.iter().filter(|j| j.min_proc_time().is_some()).count();
        prop_assert_eq!(dispatched.len(), feasible);
        dispatched.sort();
        dispatched.dedup();
        prop_assert_eq!(dispatched.len(), feasible, "a job was dispatched twice");
    }

    /// The projection covers every feasible job exactly once, respects
    /// per-executor serialization, and never projects a completion before
    /// `now + proc`.
    #[test]
    fn projection_is_consistent(
        raw in prop::collection::vec(job_strategy(2), 0..25),
        policy_idx in 0usize..3,
    ) {
        let jobs = build(&raw);
        let mut sched = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            sched.submit(j.clone());
        }
        let state = SystemState::idle(SimTime::ZERO, 2);
        let projection = sched.project_schedule(&state);
        let feasible = jobs.iter().filter(|j| j.min_proc_time().is_some()).count();
        prop_assert_eq!(projection.len(), feasible);

        let mut seen: Vec<JobId> = projection.iter().map(|p| p.id).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), feasible, "duplicate in projection");

        for e in 0..2 {
            let mut cursor = SimTime::ZERO;
            for p in projection.iter().filter(|p| p.executor == e) {
                prop_assert!(p.starts >= cursor, "overlap on executor {e}");
                prop_assert!(p.completes > p.starts);
                cursor = p.completes;
            }
        }
        for p in &projection {
            let job = jobs.iter().find(|j| j.id == p.id).unwrap();
            let proc = job.proc_times[p.executor].unwrap();
            prop_assert_eq!(p.completes, p.starts + proc);
        }
    }

    /// SJF never inverts plan-length order: on a single executor, the
    /// dispatch sequence is nondecreasing in processing time, whatever
    /// the arrival pattern.
    #[test]
    fn sjf_never_inverts_plan_length_order(
        jobs in prop::collection::vec((0u32..1_000, 1u32..500), 1..25),
    ) {
        let mut sched = FillJobScheduler::new(Box::new(ShortestJobFirst));
        for (i, &(arrival, proc)) in jobs.iter().enumerate() {
            sched.submit(JobInfo::new(
                JobId(i as u64),
                SimTime::from_secs_f64(arrival as f64),
                vec![Some(SimDuration::from_secs(proc as u64))],
            ));
        }
        let state = SystemState::idle(SimTime::from_secs_f64(2_000.0), 1);
        let mut prev: Option<SimDuration> = None;
        while let Some(job) = sched.pick_for(0, &state) {
            let proc = job.min_proc_time().unwrap();
            if let Some(prev) = prev {
                prop_assert!(
                    proc >= prev,
                    "SJF dispatched {proc} after {prev}"
                );
            }
            prev = Some(proc);
        }
    }

    /// EDF never inverts deadlines: among deadline-carrying jobs on one
    /// executor, the dispatch sequence is nondecreasing in deadline.
    #[test]
    fn edf_never_inverts_deadlines(
        jobs in prop::collection::vec((0u32..1_000, 1u32..5_000), 1..25),
    ) {
        let mut sched = FillJobScheduler::new(Box::new(EarliestDeadlineFirst));
        for (i, &(arrival, deadline)) in jobs.iter().enumerate() {
            sched.submit(
                JobInfo::new(
                    JobId(i as u64),
                    SimTime::from_secs_f64(arrival as f64),
                    vec![Some(SimDuration::from_secs(10))],
                )
                .with_deadline(SimTime::from_secs_f64(deadline as f64)),
            );
        }
        // `now` before every deadline, so no job is clamped to the
        // overdue plateau where only tie-breaks order them.
        let state = SystemState::idle(SimTime::ZERO, 1);
        let mut prev: Option<SimTime> = None;
        while let Some(job) = sched.pick_for(0, &state) {
            let deadline = job.deadline.unwrap();
            if let Some(prev) = prev {
                prop_assert!(
                    deadline >= prev,
                    "EDF dispatched deadline {deadline} after {prev}"
                );
            }
            prev = Some(deadline);
        }
    }

    /// Requeue preserves the evicted job's original arrival: an
    /// immediate pick → requeue detour leaves the full dispatch sequence
    /// identical to the undisturbed one, under every policy.
    #[test]
    fn requeue_preserves_original_arrival(
        raw in prop::collection::vec(job_strategy(1), 1..20),
        policy_idx in 0usize..3,
    ) {
        let jobs = build(&raw);
        let state = SystemState::idle(SimTime::from_secs_f64(5_000.0), 1);
        let drain = |mut sched: FillJobScheduler| {
            std::iter::from_fn(|| sched.pick_for(0, &state).map(|j| j.id))
                .collect::<Vec<JobId>>()
        };

        let mut plain = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            plain.submit(j.clone());
        }
        let undisturbed = drain(plain);

        let mut churned = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            churned.submit(j.clone());
        }
        if let Some(evicted) = churned.pick_for(0, &state) {
            let arrival = evicted.arrival;
            churned.requeue(evicted.clone());
            // The arrival survived the round-trip…
            let requeued = churned
                .queued()
                .iter()
                .find(|j| j.id == evicted.id)
                .expect("requeued job is back in the queue");
            prop_assert_eq!(requeued.arrival, arrival);
        }
        // …so the dispatch order is exactly what it would have been.
        prop_assert_eq!(drain(churned), undisturbed);
    }

    /// SJF's mean projected completion is never worse than FIFO's on a
    /// single executor (the classic exchange argument).
    #[test]
    fn sjf_dominates_fifo_on_one_executor(
        procs in prop::collection::vec(1u32..500, 1..20),
    ) {
        let jobs: Vec<JobInfo> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                JobInfo::new(
                    JobId(i as u64),
                    SimTime::ZERO,
                    vec![Some(SimDuration::from_secs(p as u64))],
                )
            })
            .collect();
        let mean_completion = |policy: Box<dyn SchedulingPolicy>| {
            let mut s = FillJobScheduler::new(policy);
            for j in &jobs {
                s.submit(j.clone());
            }
            let proj = s.project_schedule(&SystemState::idle(SimTime::ZERO, 1));
            proj.iter().map(|p| p.completes.as_secs_f64()).sum::<f64>() / proj.len() as f64
        };
        let sjf = mean_completion(Box::new(ShortestJobFirst));
        let fifo = mean_completion(Box::new(Fifo));
        prop_assert!(sjf <= fifo + 1e-9, "SJF {sjf} vs FIFO {fifo}");
    }
}
