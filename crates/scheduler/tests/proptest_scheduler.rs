//! Property tests for the scheduler: conservation, projection
//! consistency, and policy sanity under arbitrary job populations.

use proptest::prelude::*;

use pipefill_executor::JobId;
use pipefill_scheduler::{
    Fifo, FillJobScheduler, JobInfo, MakespanMin, SchedulingPolicy, ShortestJobFirst, SystemState,
};
use pipefill_sim_core::{SimDuration, SimTime};

#[derive(Debug, Clone)]
struct RawJob {
    arrival: u32,
    procs: Vec<Option<u32>>, // per executor, seconds
    deadline: Option<u32>,
}

fn job_strategy(executors: usize) -> impl Strategy<Value = RawJob> {
    (
        0u32..1_000,
        prop::collection::vec(prop::option::of(1u32..500), executors),
        prop::option::of(1u32..5_000),
    )
        .prop_map(|(arrival, procs, deadline)| RawJob {
            arrival,
            procs,
            deadline,
        })
}

fn build(jobs: &[RawJob]) -> Vec<JobInfo> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            let mut info = JobInfo::new(
                JobId(i as u64),
                SimTime::from_secs_f64(j.arrival as f64),
                j.procs
                    .iter()
                    .map(|p| p.map(|s| SimDuration::from_secs(s as u64)))
                    .collect(),
            );
            if let Some(d) = j.deadline {
                info = info.with_deadline(SimTime::from_secs_f64(d as f64));
            }
            info
        })
        .collect()
}

fn policies() -> Vec<Box<dyn SchedulingPolicy>> {
    vec![
        Box::new(Fifo),
        Box::new(ShortestJobFirst),
        Box::new(MakespanMin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatching drains exactly the feasible jobs, each exactly once,
    /// under every policy.
    #[test]
    fn dispatch_conserves_jobs(
        raw in prop::collection::vec(job_strategy(3), 0..30),
        policy_idx in 0usize..3,
    ) {
        let jobs = build(&raw);
        let mut sched = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            sched.submit(j.clone());
        }
        let state = SystemState::idle(SimTime::ZERO, 3);
        let mut dispatched: Vec<JobId> = Vec::new();
        // Round-robin executors until nothing moves.
        loop {
            let mut progressed = false;
            for e in 0..3 {
                if let Some(j) = sched.pick_for(e, &state) {
                    prop_assert!(j.feasible_on(e));
                    dispatched.push(j.id);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let feasible = jobs.iter().filter(|j| j.min_proc_time().is_some()).count();
        prop_assert_eq!(dispatched.len(), feasible);
        dispatched.sort();
        dispatched.dedup();
        prop_assert_eq!(dispatched.len(), feasible, "a job was dispatched twice");
    }

    /// The projection covers every feasible job exactly once, respects
    /// per-executor serialization, and never projects a completion before
    /// `now + proc`.
    #[test]
    fn projection_is_consistent(
        raw in prop::collection::vec(job_strategy(2), 0..25),
        policy_idx in 0usize..3,
    ) {
        let jobs = build(&raw);
        let mut sched = FillJobScheduler::new(policies().remove(policy_idx));
        for j in &jobs {
            sched.submit(j.clone());
        }
        let state = SystemState::idle(SimTime::ZERO, 2);
        let projection = sched.project_schedule(&state);
        let feasible = jobs.iter().filter(|j| j.min_proc_time().is_some()).count();
        prop_assert_eq!(projection.len(), feasible);

        let mut seen: Vec<JobId> = projection.iter().map(|p| p.id).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), feasible, "duplicate in projection");

        for e in 0..2 {
            let mut cursor = SimTime::ZERO;
            for p in projection.iter().filter(|p| p.executor == e) {
                prop_assert!(p.starts >= cursor, "overlap on executor {e}");
                prop_assert!(p.completes > p.starts);
                cursor = p.completes;
            }
        }
        for p in &projection {
            let job = jobs.iter().find(|j| j.id == p.id).unwrap();
            let proc = job.proc_times[p.executor].unwrap();
            prop_assert_eq!(p.completes, p.starts + proc);
        }
    }

    /// SJF's mean projected completion is never worse than FIFO's on a
    /// single executor (the classic exchange argument).
    #[test]
    fn sjf_dominates_fifo_on_one_executor(
        procs in prop::collection::vec(1u32..500, 1..20),
    ) {
        let jobs: Vec<JobInfo> = procs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                JobInfo::new(
                    JobId(i as u64),
                    SimTime::ZERO,
                    vec![Some(SimDuration::from_secs(p as u64))],
                )
            })
            .collect();
        let mean_completion = |policy: Box<dyn SchedulingPolicy>| {
            let mut s = FillJobScheduler::new(policy);
            for j in &jobs {
                s.submit(j.clone());
            }
            let proj = s.project_schedule(&SystemState::idle(SimTime::ZERO, 1));
            proj.iter().map(|p| p.completes.as_secs_f64()).sum::<f64>() / proj.len() as f64
        };
        let sjf = mean_completion(Box::new(ShortestJobFirst));
        let fifo = mean_completion(Box::new(Fifo));
        prop_assert!(sjf <= fifo + 1e-9, "SJF {sjf} vs FIFO {fifo}");
    }
}
