//! The scheduler proper: job queue, score-maximizing placement, and the
//! completion-time / deadline queries.

use pipefill_executor::JobId;
use pipefill_sim_core::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::policy::SchedulingPolicy;

/// What the Scheduler knows about one job: arrival, optional deadline,
/// and its processing time on every device (`None` where the Executor
/// found no feasible plan — e.g. the device's bubbles are too small for
/// any configuration of the model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobInfo {
    /// Job identifier.
    pub id: JobId,
    /// Submission time.
    pub arrival: SimTime,
    /// Optional completion deadline.
    pub deadline: Option<SimTime>,
    /// Wall-clock processing time on each device's bubbles, indexed by
    /// executor.
    pub proc_times: Vec<Option<SimDuration>>,
}

impl JobInfo {
    /// Creates a job description.
    pub fn new(id: JobId, arrival: SimTime, proc_times: Vec<Option<SimDuration>>) -> Self {
        JobInfo {
            id,
            arrival,
            deadline: None,
            proc_times,
        }
    }

    /// Adds a deadline.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Fastest processing time across devices, if feasible anywhere.
    pub fn min_proc_time(&self) -> Option<SimDuration> {
        self.proc_times.iter().flatten().min().copied()
    }

    /// True if this job can run on the given executor.
    pub fn feasible_on(&self, executor: usize) -> bool {
        self.proc_times.get(executor).copied().flatten().is_some()
    }
}

/// One executor's occupancy as seen by the Scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorSnapshot {
    /// Time until the currently running fill job completes
    /// ([`SimDuration::ZERO`] if idle).
    pub remaining: SimDuration,
}

/// The state the policy's score function receives (`s` in the paper's
/// `f(j, s, i)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Current time.
    pub now: SimTime,
    /// Per-executor occupancy.
    pub executors: Vec<ExecutorSnapshot>,
}

impl SystemState {
    /// A state with `n` idle executors.
    pub fn idle(now: SimTime, n: usize) -> Self {
        SystemState {
            now,
            executors: vec![
                ExecutorSnapshot {
                    remaining: SimDuration::ZERO,
                };
                n
            ],
        }
    }

    /// Largest remaining busy time across executors (`max(s.rem_times)`).
    pub fn max_remaining(&self) -> SimDuration {
        self.executors
            .iter()
            .map(|e| e.remaining)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The Fill Job Scheduler: a queue plus a pluggable scoring policy.
pub struct FillJobScheduler {
    policy: Box<dyn SchedulingPolicy>,
    queue: Vec<JobInfo>,
}

impl std::fmt::Debug for FillJobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FillJobScheduler")
            .field("policy", &self.policy.name())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl FillJobScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: Box<dyn SchedulingPolicy>) -> Self {
        FillJobScheduler {
            policy,
            queue: Vec::new(),
        }
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// Enqueues a job.
    pub fn submit(&mut self, job: JobInfo) {
        self.queue.push(job);
    }

    /// Re-enqueues a job evicted from a device mid-execution (GPU failure,
    /// preemption). The job keeps its *original* arrival time, so
    /// arrival-ordered policies (FIFO, and the deterministic tie-break of
    /// every policy) favor evicted work over jobs that arrived later —
    /// FreeRide-style preemption fairness.
    ///
    /// # Panics
    ///
    /// Panics if a job with the same id is already queued: an evicted job
    /// must have left the queue when it was dispatched, so a duplicate
    /// means the caller is about to run it twice.
    pub fn requeue(&mut self, job: JobInfo) {
        assert!(
            self.queue.iter().all(|j| j.id != job.id),
            "job {} is already queued; evicted jobs re-enter exactly once",
            job.id
        );
        self.queue.push(job);
    }

    /// Jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The queued jobs (for inspection).
    pub fn queued(&self) -> &[JobInfo] {
        &self.queue
    }

    /// "When a device completes a fill-job, the Scheduler chooses which
    /// job to submit to the device by choosing the job which maximizes
    /// the score" (§4.4). Removes and returns that job, or `None` if no
    /// queued job is feasible on this executor. Ties break by earlier
    /// arrival, then lower id, for determinism.
    pub fn pick_for(&mut self, executor: usize, state: &SystemState) -> Option<JobInfo> {
        best_index(&self.queue, self.policy.as_ref(), executor, state)
            .map(|idx| self.queue.swap_remove(idx))
    }

    /// Estimated completion time if `job_id` were dispatched next to its
    /// best executor: `now + remaining(e) + proc_time(e)` minimized over
    /// `e`. This ignores other queued jobs (documented approximation; the
    /// paper's Scheduler can be exact because it also knows queue order —
    /// ours answers the same query for the head-of-queue case exactly).
    pub fn estimate_completion(&self, job_id: JobId, state: &SystemState) -> Option<SimTime> {
        let job = self.queue.iter().find(|j| j.id == job_id)?;
        job.proc_times
            .iter()
            .enumerate()
            .filter_map(|(e, t)| {
                let t = (*t)?;
                let rem = state.executors.get(e)?.remaining;
                Some(state.now + rem + t)
            })
            .min()
    }

    /// "Whether a fill-job's deadline can be met under current
    /// conditions" (§4.4). `None` if the job is unknown or has no
    /// deadline. Uses the queue-aware projection.
    pub fn deadline_feasible(&self, job_id: JobId, state: &SystemState) -> Option<bool> {
        let job = self.queue.iter().find(|j| j.id == job_id)?;
        let deadline = job.deadline?;
        let eta = self
            .project_schedule(state)
            .into_iter()
            .find(|p| p.id == job_id)?
            .completes;
        Some(eta <= deadline)
    }

    /// Projects the full dispatch schedule under the active policy,
    /// assuming no further arrivals: "the Scheduler knows how long the
    /// currently executing fill-jobs will take to complete, as well as
    /// the order in which the queued fill-jobs will be executed" (§4.4).
    ///
    /// Returns one entry per queued job with the executor it will land on
    /// and its projected completion time, in dispatch order. Jobs
    /// feasible nowhere are omitted.
    pub fn project_schedule(&self, state: &SystemState) -> Vec<ProjectedDispatch> {
        let mut queue = self.queue.clone();
        // Executor free times, evolving as we dispatch.
        let mut free: Vec<SimTime> = state
            .executors
            .iter()
            .map(|e| state.now + e.remaining)
            .collect();
        let mut out = Vec::with_capacity(queue.len());
        while !queue.is_empty() {
            // The next dispatch happens on the executor that frees first
            // (ties to the lower index) — that is when the Scheduler is
            // consulted next.
            let Some((executor, &t)) = free.iter().enumerate().min_by_key(|&(i, &t)| (t, i)) else {
                break;
            };
            let projected = SystemState {
                now: t,
                executors: free
                    .iter()
                    .map(|&f| ExecutorSnapshot {
                        remaining: f.saturating_since(t),
                    })
                    .collect(),
            };
            // `best_index` only returns feasible picks, so the `?` on
            // `proc_times` never fires; folding it into the match keeps
            // this total without a panic path.
            let pick = best_index(&queue, self.policy.as_ref(), executor, &projected)
                .and_then(|idx| Some((idx, queue[idx].proc_times[executor]?)));
            match pick {
                Some((idx, proc)) => {
                    let job = queue.swap_remove(idx);
                    let completes = t + proc;
                    free[executor] = completes;
                    out.push(ProjectedDispatch {
                        id: job.id,
                        executor,
                        starts: t,
                        completes,
                    });
                }
                None => {
                    // Nothing feasible on this executor; park it so the
                    // projection can make progress on others. If every
                    // executor is parked past every job, drop the rest.
                    let others_can: bool = queue.iter().any(|j| {
                        j.proc_times
                            .iter()
                            .enumerate()
                            .any(|(e, p)| e != executor && p.is_some())
                    });
                    if !others_can {
                        break;
                    }
                    free[executor] = SimTime::MAX;
                }
            }
        }
        out
    }
}

/// One entry of [`FillJobScheduler::project_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectedDispatch {
    /// Job id.
    pub id: JobId,
    /// Executor the job will run on.
    pub executor: usize,
    /// Projected dispatch time.
    pub starts: SimTime,
    /// Projected completion time.
    pub completes: SimTime,
}

/// Index of the highest-scoring feasible job for `executor`, with the
/// deterministic arrival/id tie-break.
fn best_index(
    queue: &[JobInfo],
    policy: &dyn SchedulingPolicy,
    executor: usize,
    state: &SystemState,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (idx, job) in queue.iter().enumerate() {
        if !job.feasible_on(executor) {
            continue;
        }
        let score = policy.score(job, state, executor);
        let better = match best {
            None => true,
            Some((bidx, bscore)) => {
                let b = &queue[bidx];
                score > bscore || (score == bscore && (job.arrival, job.id) < (b.arrival, b.id))
            }
        };
        if better {
            best = Some((idx, score));
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fifo, MakespanMin, ShortestJobFirst};

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn job(id: u64, arrival_s: f64, times: &[Option<u64>]) -> JobInfo {
        JobInfo::new(
            JobId(id),
            SimTime::from_secs_f64(arrival_s),
            times.iter().map(|t| t.map(secs)).collect(),
        )
    }

    #[test]
    fn sjf_prefers_short_jobs() {
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(1, 0.0, &[Some(100)]));
        s.submit(job(2, 0.0, &[Some(10)]));
        s.submit(job(3, 0.0, &[Some(50)]));
        let state = SystemState::idle(SimTime::ZERO, 1);
        let order: Vec<u64> =
            std::iter::from_fn(|| s.pick_for(0, &state).map(|j| j.id.0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn fifo_respects_arrival_order() {
        let mut s = FillJobScheduler::new(Box::new(Fifo));
        s.submit(job(1, 5.0, &[Some(1)]));
        s.submit(job(2, 1.0, &[Some(100)]));
        s.submit(job(3, 3.0, &[Some(50)]));
        let state = SystemState::idle(SimTime::from_secs_f64(10.0), 1);
        let order: Vec<u64> =
            std::iter::from_fn(|| s.pick_for(0, &state).map(|j| j.id.0)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn infeasible_jobs_are_skipped() {
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(1, 0.0, &[None, Some(10)]));
        s.submit(job(2, 0.0, &[Some(20), Some(20)]));
        let state = SystemState::idle(SimTime::ZERO, 2);
        // Executor 0 can only run job 2.
        let picked = s.pick_for(0, &state).unwrap();
        assert_eq!(picked.id, JobId(2));
        // Job 1 remains for executor 1.
        let picked = s.pick_for(1, &state).unwrap();
        assert_eq!(picked.id, JobId(1));
        assert!(s.pick_for(0, &state).is_none());
    }

    #[test]
    fn makespan_policy_balances_executors() {
        // Executor 0 has a long queue remaining; both jobs feasible on
        // both. The makespan policy scores a job on executor i by
        // 1/max(proc[i], max_rem): when filling executor 1 (idle) it
        // should prefer the job whose own processing time stays under the
        // current makespan rather than extending it.
        let mut s = FillJobScheduler::new(Box::new(MakespanMin));
        s.submit(job(1, 0.0, &[Some(200), Some(200)])); // would extend makespan
        s.submit(job(2, 0.0, &[Some(90), Some(90)])); // fits under it
        let state = SystemState {
            now: SimTime::ZERO,
            executors: vec![
                ExecutorSnapshot {
                    remaining: secs(100),
                },
                ExecutorSnapshot {
                    remaining: SimDuration::ZERO,
                },
            ],
        };
        let picked = s.pick_for(1, &state).unwrap();
        assert_eq!(picked.id, JobId(2));
    }

    #[test]
    fn ties_break_by_arrival_then_id() {
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(7, 2.0, &[Some(10)]));
        s.submit(job(3, 1.0, &[Some(10)]));
        s.submit(job(5, 1.0, &[Some(10)]));
        let state = SystemState::idle(SimTime::from_secs_f64(5.0), 1);
        let order: Vec<u64> =
            std::iter::from_fn(|| s.pick_for(0, &state).map(|j| j.id.0)).collect();
        assert_eq!(order, vec![3, 5, 7]);
    }

    #[test]
    fn requeued_jobs_keep_arrival_priority() {
        let mut s = FillJobScheduler::new(Box::new(Fifo));
        s.submit(job(1, 0.0, &[Some(10)]));
        s.submit(job(2, 5.0, &[Some(10)]));
        let state = SystemState::idle(SimTime::from_secs_f64(20.0), 1);
        // Job 1 dispatches, gets evicted, and re-enters with its original
        // arrival — FIFO must still run it before the later job 2.
        let evicted = s.pick_for(0, &state).unwrap();
        assert_eq!(evicted.id, JobId(1));
        s.requeue(evicted);
        assert_eq!(s.queue_len(), 2);
        assert_eq!(s.pick_for(0, &state).unwrap().id, JobId(1));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_requeue_of_a_queued_job_panics() {
        let mut s = FillJobScheduler::new(Box::new(Fifo));
        s.submit(job(1, 0.0, &[Some(10)]));
        s.requeue(job(1, 0.0, &[Some(10)]));
    }

    #[test]
    fn completion_estimate_accounts_for_occupancy() {
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(1, 0.0, &[Some(60), Some(60)]));
        let state = SystemState {
            now: SimTime::from_secs_f64(100.0),
            executors: vec![
                ExecutorSnapshot {
                    remaining: secs(30),
                },
                ExecutorSnapshot { remaining: secs(5) },
            ],
        };
        // Best executor is 1: 100 + 5 + 60 = 165.
        assert_eq!(
            s.estimate_completion(JobId(1), &state),
            Some(SimTime::from_secs_f64(165.0))
        );
        assert_eq!(s.estimate_completion(JobId(9), &state), None);
    }

    #[test]
    fn projection_matches_live_dispatch_order() {
        let build = || {
            let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
            s.submit(job(1, 0.0, &[Some(100), Some(100)]));
            s.submit(job(2, 0.0, &[Some(10), Some(10)]));
            s.submit(job(3, 0.0, &[Some(50), Some(50)]));
            s.submit(job(4, 0.0, &[Some(30), Some(30)]));
            s
        };
        let state = SystemState::idle(SimTime::ZERO, 2);
        let projection = build().project_schedule(&state);
        assert_eq!(projection.len(), 4);

        // Replay the projection against a live scheduler: at each
        // projected dispatch instant, pick_for must return the same job.
        let mut live = build();
        for p in &projection {
            let now = p.starts;
            let mut st = state.clone();
            st.now = now;
            // Reconstruct executor occupancy from earlier projections.
            for q in &projection {
                if q.starts < now && q.completes > now {
                    st.executors[q.executor].remaining = q.completes.saturating_since(now);
                }
            }
            let picked = live.pick_for(p.executor, &st).unwrap();
            assert_eq!(picked.id, p.id, "divergence at {now}");
        }
    }

    #[test]
    fn projection_accounts_for_queueing() {
        // One executor, two jobs: the second's completion includes the
        // first's service time.
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(1, 0.0, &[Some(10)]));
        s.submit(job(2, 0.0, &[Some(100)]));
        let proj = s.project_schedule(&SystemState::idle(SimTime::ZERO, 1));
        assert_eq!(proj[0].id, JobId(1));
        assert_eq!(proj[0].completes, SimTime::from_secs_f64(10.0));
        assert_eq!(proj[1].id, JobId(2));
        assert_eq!(proj[1].starts, SimTime::from_secs_f64(10.0));
        assert_eq!(proj[1].completes, SimTime::from_secs_f64(110.0));
    }

    #[test]
    fn projection_skips_jobs_feasible_nowhere() {
        let mut s = FillJobScheduler::new(Box::new(Fifo));
        s.submit(job(1, 0.0, &[None]));
        s.submit(job(2, 1.0, &[Some(5)]));
        let proj = s.project_schedule(&SystemState::idle(SimTime::ZERO, 1));
        assert_eq!(proj.len(), 1);
        assert_eq!(proj[0].id, JobId(2));
    }

    #[test]
    fn deadline_feasibility_query() {
        let mut s = FillJobScheduler::new(Box::new(ShortestJobFirst));
        s.submit(job(1, 0.0, &[Some(60)]).with_deadline(SimTime::from_secs_f64(100.0)));
        s.submit(job(2, 0.0, &[Some(60)]).with_deadline(SimTime::from_secs_f64(10.0)));
        s.submit(job(3, 0.0, &[Some(60)]));
        let state = SystemState::idle(SimTime::ZERO, 1);
        assert_eq!(s.deadline_feasible(JobId(1), &state), Some(true));
        assert_eq!(s.deadline_feasible(JobId(2), &state), Some(false));
        assert_eq!(s.deadline_feasible(JobId(3), &state), None, "no deadline");
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let mut s = FillJobScheduler::new(Box::new(Fifo));
        let state = SystemState::idle(SimTime::ZERO, 1);
        assert!(s.pick_for(0, &state).is_none());
        assert_eq!(s.queue_len(), 0);
    }
}
