//! # pipefill-scheduler
//!
//! The Fill Job Scheduler (§4.4): the interface between a main job's
//! pipeline bubbles and higher-level cluster schedulers.
//!
//! The scheduling policy is exactly the paper's user-defined scoring
//! function: `f(job, state, executor_index) → score`, evaluated whenever a
//! device finishes a fill job; the queued job with the highest score is
//! submitted to that device. Built-in policies reproduce the paper's
//! examples — Shortest-Job-First (`1 / min(proc_times)`) and
//! Makespan-Minimizing (`1 / max(proc_times[i], rem_times)`) — plus FIFO,
//! Earliest-Deadline-First, and weighted compositions for the paper's
//! "hierarchical policies … that prioritize proximity-to-deadline but
//! default to more standard policies".
//!
//! Because the Scheduler holds every device's bubble description and job
//! profiles, it can answer completion-time and deadline-feasibility
//! queries for higher-level schedulers, also reproduced here.
//!
//! # Example
//!
//! ```
//! use pipefill_scheduler::{FillJobScheduler, JobInfo, ShortestJobFirst, SystemState};
//! use pipefill_executor::JobId;
//! use pipefill_sim_core::{SimDuration, SimTime};
//!
//! let mut sched = FillJobScheduler::new(Box::new(ShortestJobFirst));
//! sched.submit(JobInfo::new(JobId(1), SimTime::ZERO, vec![Some(SimDuration::from_secs(60))]));
//! sched.submit(JobInfo::new(JobId(2), SimTime::ZERO, vec![Some(SimDuration::from_secs(5))]));
//! let state = SystemState::idle(SimTime::ZERO, 1);
//! let picked = sched.pick_for(0, &state).unwrap();
//! assert_eq!(picked.id, JobId(2)); // the short job wins
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fleet;
mod policy;
mod scheduler;

pub use fleet::GlobalFillQueue;
pub use policy::{
    EarliestDeadlineFirst, Fifo, MakespanMin, SchedulingPolicy, ShortestJobFirst, Weighted,
};
pub use scheduler::{ExecutorSnapshot, FillJobScheduler, JobInfo, SystemState};
