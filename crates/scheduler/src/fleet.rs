//! The cluster-wide fill queue for fleet-scale simulations.
//!
//! A fleet runs many pipeline-parallel main jobs at once; their stages
//! form one flat executor space. Evicted fill jobs re-enter here rather
//! than a per-pipeline queue, so any compatible idle stage in the whole
//! fleet can resume them. [`GlobalFillQueue`] wraps a
//! [`FillJobScheduler`] with the two fleet-level concerns:
//!
//! * **Per-job admission** — each main job declares whether its stages
//!   accept fill work evicted from *other* jobs. Admission is applied by
//!   masking the foreign entries of a job's `proc_times` at requeue time,
//!   so the underlying policy machinery stays single-sourced: a masked
//!   device is simply infeasible.
//! * **Locality-aware dispatch** — the caller encodes locality in
//!   `proc_times` (a fill job is only feasible on stages whose bubble
//!   geometry matches its execution plan); the queue tracks each job's
//!   origin so cross-job dispatches can be counted and audited.

use std::collections::HashMap;

use pipefill_executor::JobId;

use crate::policy::SchedulingPolicy;
use crate::scheduler::{FillJobScheduler, JobInfo, SystemState};

/// One global fill queue shared by every main job of a fleet.
pub struct GlobalFillQueue {
    scheduler: FillJobScheduler,
    /// Owning main-job index per flat executor.
    owner: Vec<usize>,
    /// Per main job: whether its stages accept foreign fill work.
    admits_foreign: Vec<bool>,
    /// Origin main job of each queued fill job.
    origin: HashMap<JobId, usize>,
    peak_depth: usize,
    cross_job_dispatches: u64,
}

impl std::fmt::Debug for GlobalFillQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalFillQueue")
            .field("devices", &self.owner.len())
            .field("main_jobs", &self.admits_foreign.len())
            .field("queued", &self.scheduler.queue_len())
            .finish()
    }
}

impl GlobalFillQueue {
    /// Creates the queue. `owner[d]` is the main job owning flat executor
    /// `d`; `admits_foreign[j]` gates whether job `j`'s executors accept
    /// fill work evicted from other jobs.
    ///
    /// # Panics
    ///
    /// Panics if an owner index is out of range.
    pub fn new(
        policy: Box<dyn SchedulingPolicy>,
        owner: Vec<usize>,
        admits_foreign: Vec<bool>,
    ) -> Self {
        assert!(
            owner.iter().all(|&j| j < admits_foreign.len()),
            "every executor owner must index a main job"
        );
        GlobalFillQueue {
            scheduler: FillJobScheduler::new(policy),
            owner,
            admits_foreign,
            origin: HashMap::new(),
            peak_depth: 0,
            cross_job_dispatches: 0,
        }
    }

    /// Flat executors in the fleet.
    pub fn num_devices(&self) -> usize {
        self.owner.len()
    }

    /// The main job owning flat executor `device`.
    pub fn owner_of(&self, device: usize) -> usize {
        self.owner[device]
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.scheduler.policy_name()
    }

    /// Re-enqueues a fill job evicted from `origin_job`. Devices of main
    /// jobs that do not admit foreign work are masked infeasible (the
    /// origin job's own devices are never masked). The job keeps its
    /// original arrival, so arrival-ordered policies still favor evicted
    /// work over later submissions.
    ///
    /// # Panics
    ///
    /// Panics if `proc_times` does not cover every flat executor, or if a
    /// job with the same id is already queued (a fill job re-enters the
    /// fleet exactly once per eviction).
    pub fn requeue_from(&mut self, origin_job: usize, mut info: JobInfo) {
        assert_eq!(
            info.proc_times.len(),
            self.owner.len(),
            "proc_times must cover every flat executor"
        );
        for (d, t) in info.proc_times.iter_mut().enumerate() {
            let receiver = self.owner[d];
            if receiver != origin_job && !self.admits_foreign[receiver] {
                *t = None;
            }
        }
        self.origin.insert(info.id, origin_job);
        self.scheduler.requeue(info);
        self.peak_depth = self.peak_depth.max(self.scheduler.queue_len());
    }

    /// Picks the best queued fill job for flat executor `device` under
    /// the active policy, or `None` if nothing queued is feasible there.
    pub fn pick_for(&mut self, device: usize, state: &SystemState) -> Option<JobInfo> {
        let info = self.scheduler.pick_for(device, state)?;
        let origin = self.origin.remove(&info.id);
        debug_assert!(origin.is_some(), "every queued job has a recorded origin");
        if origin.is_some_and(|origin| origin != self.owner[device]) {
            self.cross_job_dispatches += 1;
        }
        Some(info)
    }

    /// Fill jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.scheduler.queue_len()
    }

    /// Deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Dispatches that resumed a fill job on a different main job than it
    /// was evicted from.
    pub fn cross_job_dispatches(&self) -> u64 {
        self.cross_job_dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fifo;
    use pipefill_sim_core::{SimDuration, SimTime};

    /// Two main jobs × two stages each: flat executors 0,1 belong to job
    /// 0 and 2,3 to job 1.
    fn queue(admits: [bool; 2]) -> GlobalFillQueue {
        GlobalFillQueue::new(Box::new(Fifo), vec![0, 0, 1, 1], admits.to_vec())
    }

    fn info(id: u64, arrival_s: f64, feasible: &[usize]) -> JobInfo {
        let proc_times = (0..4)
            .map(|d| feasible.contains(&d).then(|| SimDuration::from_secs(30)))
            .collect();
        JobInfo::new(JobId(id), SimTime::from_secs_f64(arrival_s), proc_times)
    }

    #[test]
    fn admission_masks_foreign_devices() {
        let mut q = queue([true, false]);
        // Evicted from job 0, nominally feasible everywhere.
        q.requeue_from(0, info(1, 0.0, &[0, 1, 2, 3]));
        let state = SystemState::idle(SimTime::ZERO, 4);
        // Job 1 does not admit foreign work: its devices see nothing.
        assert!(q.pick_for(2, &state).is_none());
        assert!(q.pick_for(3, &state).is_none());
        // The origin job's own devices always remain feasible.
        assert_eq!(q.pick_for(0, &state).unwrap().id, JobId(1));
    }

    #[test]
    fn cross_job_dispatches_are_counted() {
        let mut q = queue([true, true]);
        q.requeue_from(0, info(1, 0.0, &[0, 2]));
        q.requeue_from(1, info(2, 1.0, &[2, 3]));
        let state = SystemState::idle(SimTime::ZERO, 4);
        // Device 2 (job 1) resumes the job evicted from job 0: cross-job.
        assert_eq!(q.pick_for(2, &state).unwrap().id, JobId(1));
        assert_eq!(q.cross_job_dispatches(), 1);
        // Device 3 (job 1) resumes job 1's own eviction: local.
        assert_eq!(q.pick_for(3, &state).unwrap().id, JobId(2));
        assert_eq!(q.cross_job_dispatches(), 1);
        assert_eq!(q.peak_depth(), 2);
        assert_eq!(q.queue_len(), 0);
    }

    #[test]
    fn locality_is_encoded_in_proc_times() {
        let mut q = queue([true, true]);
        // Only feasible on its origin stage (flat 1).
        q.requeue_from(0, info(7, 0.0, &[1]));
        let state = SystemState::idle(SimTime::ZERO, 4);
        assert!(q.pick_for(0, &state).is_none());
        assert!(q.pick_for(2, &state).is_none());
        assert_eq!(q.pick_for(1, &state).unwrap().id, JobId(7));
    }

    #[test]
    #[should_panic(expected = "re-enter")]
    fn double_requeue_panics() {
        let mut q = queue([true, true]);
        q.requeue_from(0, info(1, 0.0, &[0]));
        q.requeue_from(0, info(1, 0.0, &[0]));
    }

    #[test]
    #[should_panic(expected = "every flat executor")]
    fn short_proc_times_rejected() {
        let mut q = queue([true, true]);
        let short = JobInfo::new(
            JobId(1),
            SimTime::ZERO,
            vec![Some(SimDuration::from_secs(1))],
        );
        q.requeue_from(0, short);
    }

    #[test]
    #[should_panic(expected = "index a main job")]
    fn bad_owner_rejected() {
        let _ = GlobalFillQueue::new(Box::new(Fifo), vec![0, 2], vec![true, true]);
    }
}
