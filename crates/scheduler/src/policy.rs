//! Built-in scheduling policies — the paper's worked examples plus the
//! compositions it sketches.

use crate::scheduler::{JobInfo, SystemState};

/// A user-defined scheduling policy: "a function that takes as input a
/// job's information (arrival time, processing-time on every possible
/// device, and deadline) as well as the current state of all the
/// Executors in the system, and outputs a score" (§4.4).
pub trait SchedulingPolicy: Send + Sync {
    /// Policy name for reporting.
    fn name(&self) -> &str;

    /// The score of dispatching `job` to `executor` under `state`; the
    /// scheduler dispatches the queued job with the maximum score.
    fn score(&self, job: &JobInfo, state: &SystemState, executor: usize) -> f64;
}

/// First-in-first-out: earlier arrivals score higher.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }

    fn score(&self, job: &JobInfo, _state: &SystemState, _executor: usize) -> f64 {
        -job.arrival.as_secs_f64()
    }
}

/// The paper's Shortest-Job-First example:
/// `f(j, s, i) = 1 / min(j.proc_times)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl SchedulingPolicy for ShortestJobFirst {
    fn name(&self) -> &str {
        "sjf"
    }

    fn score(&self, job: &JobInfo, _state: &SystemState, _executor: usize) -> f64 {
        match job.min_proc_time() {
            Some(t) if !t.is_zero() => 1.0 / t.as_secs_f64(),
            Some(_) => f64::MAX,
            None => f64::MIN,
        }
    }
}

/// The paper's makespan-minimizing example:
/// `f(j, s, i) = 1 / max(j.proc_times[i], s.rem_times)` — "minimize the
/// maximum busy time across all Executors".
#[derive(Debug, Clone, Copy, Default)]
pub struct MakespanMin;

impl SchedulingPolicy for MakespanMin {
    fn name(&self) -> &str {
        "makespan-min"
    }

    fn score(&self, job: &JobInfo, state: &SystemState, executor: usize) -> f64 {
        let Some(Some(proc)) = job.proc_times.get(executor) else {
            return f64::MIN;
        };
        let makespan = proc.max(&state.max_remaining()).as_secs_f64();
        if makespan == 0.0 {
            f64::MAX
        } else {
            1.0 / makespan
        }
    }
}

/// Earliest-Deadline-First: jobs closer to their deadline score higher;
/// jobs without deadlines score zero (compose with [`Weighted`] to give
/// them a fallback order).
#[derive(Debug, Clone, Copy, Default)]
pub struct EarliestDeadlineFirst;

impl SchedulingPolicy for EarliestDeadlineFirst {
    fn name(&self) -> &str {
        "edf"
    }

    fn score(&self, job: &JobInfo, state: &SystemState, _executor: usize) -> f64 {
        match job.deadline {
            None => 0.0,
            Some(d) => {
                let slack = d.saturating_since(state.now).as_secs_f64();
                // Already-late jobs are most urgent of all.
                1.0 / slack.max(1e-9)
            }
        }
    }
}

/// A weighted composition of policies — the paper's "hierarchical
/// policies … defined that prioritize proximity-to-deadline as a feature,
/// but default to more standard policies (e.g. SJF, FIFO) when there are
/// no jobs with deadlines".
pub struct Weighted {
    components: Vec<(f64, Box<dyn SchedulingPolicy>)>,
    name: String,
}

impl Weighted {
    /// Builds a composition from `(weight, policy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<(f64, Box<dyn SchedulingPolicy>)>) -> Self {
        assert!(!components.is_empty(), "weighted policy needs components");
        let name = components
            .iter()
            .map(|(w, p)| format!("{w}*{}", p.name()))
            .collect::<Vec<_>>()
            .join("+");
        Weighted { components, name }
    }

    /// The paper's sketched deadline-aware hierarchy: deadlines dominate
    /// when present, SJF breaks the rest.
    pub fn deadline_then_sjf() -> Self {
        Weighted::new(vec![
            (1e6, Box::new(EarliestDeadlineFirst)),
            (1.0, Box::new(ShortestJobFirst)),
        ])
    }
}

impl SchedulingPolicy for Weighted {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, job: &JobInfo, state: &SystemState, executor: usize) -> f64 {
        self.components
            .iter()
            .map(|(w, p)| w * p.score(job, state, executor))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipefill_executor::JobId;
    use pipefill_sim_core::{SimDuration, SimTime};

    fn job(id: u64, proc_secs: u64) -> JobInfo {
        JobInfo::new(
            JobId(id),
            SimTime::ZERO,
            vec![Some(SimDuration::from_secs(proc_secs))],
        )
    }

    fn idle() -> SystemState {
        SystemState::idle(SimTime::ZERO, 1)
    }

    #[test]
    fn sjf_scores_match_paper_formula() {
        let j = job(1, 10);
        assert!((ShortestJobFirst.score(&j, &idle(), 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn makespan_score_uses_max_of_proc_and_remaining() {
        let j = job(1, 10);
        let mut state = idle();
        state.executors[0].remaining = SimDuration::from_secs(40);
        // max(10, 40) = 40.
        assert!((MakespanMin.score(&j, &state, 0) - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn edf_prioritizes_tight_deadlines() {
        let near = job(1, 10).with_deadline(SimTime::from_secs_f64(20.0));
        let far = job(2, 10).with_deadline(SimTime::from_secs_f64(2000.0));
        let none = job(3, 10);
        let state = idle();
        let p = EarliestDeadlineFirst;
        assert!(p.score(&near, &state, 0) > p.score(&far, &state, 0));
        assert_eq!(p.score(&none, &state, 0), 0.0);
    }

    #[test]
    fn overdue_jobs_score_highest() {
        let overdue = job(1, 10).with_deadline(SimTime::from_secs_f64(1.0));
        let state = SystemState::idle(SimTime::from_secs_f64(100.0), 1);
        assert!(EarliestDeadlineFirst.score(&overdue, &state, 0) > 1e6);
    }

    #[test]
    fn weighted_hierarchy_defaults_to_sjf_without_deadlines() {
        let policy = Weighted::deadline_then_sjf();
        let short = job(1, 5);
        let long = job(2, 500);
        let state = idle();
        assert!(policy.score(&short, &state, 0) > policy.score(&long, &state, 0));
        // With a deadline in play it dominates.
        let urgent_long = job(3, 500).with_deadline(SimTime::from_secs_f64(30.0));
        assert!(policy.score(&urgent_long, &state, 0) > policy.score(&short, &state, 0));
    }

    #[test]
    fn weighted_name_describes_composition() {
        let p = Weighted::deadline_then_sjf();
        assert_eq!(p.name(), "1000000*edf+1*sjf");
    }

    #[test]
    #[should_panic(expected = "needs components")]
    fn empty_weighted_rejected() {
        let _ = Weighted::new(vec![]);
    }
}
