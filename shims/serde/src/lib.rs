//! Offline shim for `serde`.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! stands in for `serde`: it exposes the two trait names the workspace
//! imports plus the derive macros (re-exported from the sibling
//! `serde_derive` shim, where they expand to nothing). The traits are
//! blanket-implemented so any `T: Serialize` bound holds; no actual
//! serialization machinery exists. Swap this path dependency for the real
//! `serde` when a registry is reachable — no source change needed.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
