//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public result and
//! config types so downstream users can persist them, but nothing inside the
//! workspace ever serializes (experiment output goes through the hand-rolled
//! CSV writer in `pipefill-core`). The build environment has no access to a
//! crates.io mirror, so these derives expand to nothing: the shim `serde`
//! crate provides blanket trait impls, making the derive purely a marker.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; the shim `serde::Serialize` trait is
/// blanket-implemented for every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; the shim `serde::Deserialize` trait is
/// blanket-implemented for every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
