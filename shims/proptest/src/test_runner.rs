//! Test configuration and the deterministic case RNG.

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the simulation-heavy
        // suites fast while still exercising the input space.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, full-period, and statistically fine for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one (test, case) pair. The seed hashes the
    /// test's module path so distinct tests explore distinct streams.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53-bit precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_and_tests_diverge() {
        assert_ne!(
            TestRng::for_case("x", 0).next_u64(),
            TestRng::for_case("x", 1).next_u64()
        );
        assert_ne!(
            TestRng::for_case("x", 0).next_u64(),
            TestRng::for_case("y", 0).next_u64()
        );
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = TestRng::for_case("f", 0);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
