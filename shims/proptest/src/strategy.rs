//! Strategies: composable deterministic input generators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy is just a pure function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = move |rng: &mut TestRng| self.generate(rng);
        BoxedStrategy(Rc::new(inner))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) base: S,
    pub(crate) f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Length specification for [`crate::collection::vec`]: an exact size or a
/// half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec`s (`prop::collection::vec`).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `Option`s (`prop::option::of`).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let offset = rng.below(span);
                    ((self.start as i128) + offset as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding landing exactly on the excluded end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.next_f64() as f32) * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let s = (0usize..5).generate(&mut r);
            assert!(s < 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut r = rng();
        let s = crate::collection::vec(0u32..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let exact = crate::collection::vec(0u32..10, 4usize);
        assert_eq!(exact.generate(&mut r).len(), 4);
    }

    #[test]
    fn union_uses_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_and_option_compose() {
        let mut r = rng();
        let s = crate::option::of((0u32..5).prop_map(|v| v * 2));
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match s.generate(&mut r) {
                Some(v) => {
                    assert!(v % 2 == 0 && v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 50 && none > 50);
    }
}
