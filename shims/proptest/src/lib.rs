//! Offline shim for `proptest`.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config(..)]`), range and
//! tuple strategies, `Just`, `prop_oneof!`, `prop_map`,
//! `prop::collection::vec`, `prop::option::of`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * Inputs are generated from a seed derived deterministically from the
//!   test's module path and case index, so every run explores the same
//!   cases (reproducible in CI without a persistence file).
//! * There is no shrinking: a failing case panics with the assertion
//!   message; re-running reproduces it exactly.
//!
//! Swap this path dependency for the real `proptest` when a registry is
//! reachable — the tests compile against both.

pub mod strategy;
pub mod test_runner;

/// Strategy sources for composite inputs (`prop::collection`,
/// `prop::option`). Mirrors the `prop` re-export module of real proptest's
/// prelude.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::option::of` support.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` or `Some(inner)` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub use test_runner::ProptestConfig;

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of the `prop` module re-export in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}
