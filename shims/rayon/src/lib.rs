//! Offline shim for `rayon`.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! implements the rayon surface the workspace's parallel sweep driver uses:
//! `prelude::*` with `into_par_iter()` / `par_iter()` and
//! `.map(..).collect()`, plus [`ThreadPoolBuilder`] /
//! [`current_num_threads`] for configuring the worker count (also
//! overridable via `RAYON_NUM_THREADS`, like real rayon).
//!
//! Execution model: each `map` stage materializes its input and applies the
//! closure across `current_num_threads()` scoped threads in striped order,
//! then reassembles results in input order. There is no work stealing; for
//! the coarse-grained simulation sweeps this drives (tens of runs, each
//! milliseconds to seconds), static striping is within noise of a real
//! scheduler.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// 0 = "not configured": fall back to `RAYON_NUM_THREADS` or the machine.
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Workers currently spawned by in-flight `parallel_apply` calls. Real
/// rayon shares one global pool, so nested parallelism never exceeds the
/// configured width; this shim spawns per call, so nested calls instead
/// draw from this budget (inner calls see what the outer ones left and
/// degrade to serial when the budget is spent).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The worker count parallel iterators will use.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type matching `rayon::ThreadPoolBuildError`'s role.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already configured")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for the global worker configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-sized) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = machine-sized).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration globally. Unlike real rayon this may be
    /// called repeatedly; the latest call wins (there is no pool to
    /// rebuild, only a worker count).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The traits user code imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Item type of the iterator.
    type Item: Send;
    /// The concrete iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send + 'a;
    /// The concrete iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        VecParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecParIter<&'a T>;
    fn par_iter(&'a self) -> VecParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A parallel iterator: a finite item sequence whose per-item work runs
/// across threads while preserving input order in the output.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Materializes all items (driving any pending parallel stages).
    fn drive(self) -> Vec<Self::Item>;

    /// Maps items through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _: Vec<()> = Map {
            base: self,
            f: |item| f(item),
        }
        .drive();
    }

    /// Number of items.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// Leaf iterator over a materialized `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Parallel `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn drive(self) -> Vec<R> {
        parallel_apply(self.base.drive(), &self.f)
    }
}

/// Applies `f` to every item across scoped threads; output preserves input
/// order. The worker count is the configured width minus workers already
/// spawned by enclosing calls, so nesting cannot oversubscribe.
fn parallel_apply<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let budget = current_num_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    let threads = budget.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    ACTIVE_WORKERS.fetch_add(threads, Ordering::Relaxed);
    let _release = ReleaseWorkers(threads);

    // Striped assignment: worker w takes items w, w+threads, ... — cheap
    // static balancing for sweeps whose cost varies smoothly with index.
    let indexed: Vec<Mutex<Option<(usize, T)>>> = items
        .into_iter()
        .enumerate()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let mut results: Vec<(usize, R)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let indexed = &indexed;
            handles.push(scope.spawn(move || {
                let mut out = Vec::with_capacity(n / threads + 1);
                let mut i = w;
                while i < n {
                    let (idx, item) = indexed[i]
                        .lock()
                        .expect("worker panicked")
                        .take()
                        .expect("each slot is taken exactly once");
                    out.push((idx, f(item)));
                    i += threads;
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, r)| r).collect()
}

/// Returns a worker allotment to [`ACTIVE_WORKERS`] on drop (also on
/// panic-unwind out of `parallel_apply`).
struct ReleaseWorkers(usize);

impl Drop for ReleaseWorkers {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Serializes the tests that mutate the global worker configuration.
    static CONFIG_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 64);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<i64> = (0..100).collect();
        let out: Vec<i64> = v.into_par_iter().map(|x| x + 1).map(|x| x * 3).collect();
        assert_eq!(out[0], 3);
        assert_eq!(out[99], 300);
    }

    #[test]
    fn nested_parallelism_stays_within_budget() {
        let _guard = CONFIG_LOCK.lock().unwrap();
        ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        // Outer takes the full budget; inner calls must degrade to serial
        // (not spawn 2 more workers each) and still produce correct,
        // ordered results.
        let outer: Vec<Vec<u64>> = (0u64..4)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                (0u64..8)
                    .collect::<Vec<_>>()
                    .into_par_iter()
                    .map(move |j| i * 100 + j)
                    .collect()
            })
            .collect();
        assert_eq!(outer.len(), 4);
        assert_eq!(outer[3][7], 307);
        assert_eq!(ACTIVE_WORKERS.load(Ordering::Relaxed), 0, "workers leaked");
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn thread_pool_builder_configures_count() {
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }
}
