//! Offline shim for `criterion`.
//!
//! The build environment has no access to a crates.io mirror, so this crate
//! implements the small Criterion surface the workspace's benches use:
//! [`Criterion`] with `sample_size` / `measurement_time` / `warm_up_time` /
//! `bench_function`, the [`Bencher::iter`] pattern, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is wall-clock via
//! `std::time::Instant` with mean/min/max reporting — adequate for spotting
//! order-of-magnitude regressions, without statistics or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimal stand-in for `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(4),
            warm_up_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the budget is spent.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut bench = Bencher {
            last: Duration::ZERO,
        };
        while Instant::now() < warm_deadline {
            f(&mut bench);
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bench);
            samples.push(bench.last);
            if Instant::now() >= deadline {
                break;
            }
        }
        let n = samples.len().max(1) as u32;
        let total: Duration = samples.iter().sum();
        let mean = total / n;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!("{name:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({n} samples)");
        self
    }
}

/// Passed to the benchmark closure; `iter` times one routine invocation.
#[derive(Debug)]
pub struct Bencher {
    last: Duration,
}

impl Bencher {
    /// Times `routine` once and records the duration as one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.last = start.elapsed();
        drop(black_box(out));
    }
}

/// Declares a benchmark group function (Criterion-compatible syntax).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }
}
